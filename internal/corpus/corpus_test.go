package corpus

import (
	"strings"
	"testing"

	"repro/internal/textproc"
)

func TestGenerateSizesMatchTable7(t *testing.T) {
	cases := []struct {
		reg   Register
		total int
	}{
		{CUDA, 2140},
		{OpenCL, 1944},
		{XeonPhi, 558},
	}
	for _, c := range cases {
		g := Generate(c.reg, 1)
		if len(g.Sentences) != c.total {
			t.Errorf("%v: %d sentences, want %d", c.reg, len(g.Sentences), c.total)
		}
		if len(g.Labels) != len(g.Sentences) {
			t.Errorf("%v: labels misaligned: %d vs %d", c.reg, len(g.Labels), len(g.Sentences))
		}
	}
}

func TestGenerateEvalSubsetSizes(t *testing.T) {
	cases := []struct {
		reg      Register
		sents    int
		advising int
	}{
		{CUDA, 177, 52},
		{OpenCL, 556, 128},
		{XeonPhi, 558, 120},
	}
	for _, c := range cases {
		g := Generate(c.reg, 1)
		texts, labels := g.EvalSentences()
		if len(texts) != c.sents {
			t.Errorf("%v eval size = %d, want %d", c.reg, len(texts), c.sents)
		}
		adv := 0
		for _, l := range labels {
			if l.Advising {
				adv++
			}
		}
		if adv != c.advising {
			t.Errorf("%v eval advising = %d, want %d", c.reg, adv, c.advising)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(CUDA, 7)
	b := Generate(CUDA, 7)
	if len(a.Sentences) != len(b.Sentences) {
		t.Fatal("length differs")
	}
	for i := range a.Sentences {
		if a.Sentences[i].Text != b.Sentences[i].Text {
			t.Fatalf("sentence %d differs", i)
		}
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	c := Generate(CUDA, 8)
	same := 0
	for i := range a.Sentences {
		if i < len(c.Sentences) && a.Sentences[i].Text == c.Sentences[i].Text {
			same++
		}
	}
	if same == len(a.Sentences) {
		t.Error("different seeds produced identical guides")
	}
}

func TestGenerateSentenceSplitRoundTrip(t *testing.T) {
	// every generated sentence must survive the sentence splitter intact so
	// that the advisor pipeline sees the same units the labels describe.
	g := Generate(CUDA, 1)
	for i, s := range g.Sentences {
		parts := textproc.SentenceStrings(s.Text)
		if len(parts) != 1 {
			t.Errorf("sentence %d splits into %d parts: %q", i, len(parts), s.Text)
			if i > 20 {
				t.Fatal("too many failures")
			}
		}
	}
}

func TestNuggetsPresentWithSubtopics(t *testing.T) {
	g := Generate(CUDA, 1)
	wantCounts := map[string]int{
		"warp-efficiency": 6,
		"divergence":      2,
		"mem-alignment":   7,
		"mem-instruction": 8,
		"instr-latency":   11,
		"mem-bandwidth":   18,
	}
	got := map[string]int{}
	for _, l := range g.Labels {
		if l.Subtopic != "" {
			got[l.Subtopic]++
		}
	}
	for sub, want := range wantCounts {
		if got[sub] != want {
			t.Errorf("subtopic %q: %d nuggets, want %d (Table 6 ground truth)", sub, got[sub], want)
		}
	}
}

func TestGroundTruthMatchesQueries(t *testing.T) {
	g := Generate(CUDA, 1)
	wantPerQuery := []int{6, 2, 7, 8, 11, 18}
	queries := CUDAQueries()
	if len(queries) != 6 {
		t.Fatalf("%d queries, want 6", len(queries))
	}
	for i, q := range queries {
		gt := g.GroundTruth(q)
		if len(gt) != wantPerQuery[i] {
			t.Errorf("query %q: %d ground-truth sentences, want %d", q.Issue, len(gt), wantPerQuery[i])
		}
		for _, idx := range gt {
			if !g.Labels[idx].Advising {
				t.Errorf("query %q ground truth includes non-advising sentence %d", q.Issue, idx)
			}
		}
	}
}

func TestPaperQuotedSentencesIncluded(t *testing.T) {
	quoted := map[Register]string{
		CUDA:    "The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.",
		OpenCL:  "Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.",
		XeonPhi: "Users have to pin the OpenMP threads explicitly, because the default placement scatters them across cores.",
	}
	for reg, want := range quoted {
		g := Generate(reg, 1)
		found := false
		for _, s := range g.Sentences {
			if s.Text == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v guide is missing the paper-quoted sentence %q", reg, want)
		}
	}
}

func TestHardFractionOrdering(t *testing.T) {
	// The hard-advising share must rise CUDA < OpenCL < Xeon, driving the
	// Table 8 recall ordering (0.92 > 0.80 > 0.71).
	frac := func(reg Register) float64 {
		g := Generate(reg, 1)
		hard, adv := 0, 0
		for _, l := range g.Labels {
			if l.Advising {
				adv++
				if l.Category == CatHard {
					hard++
				}
			}
		}
		return float64(hard) / float64(adv)
	}
	c, o, x := frac(CUDA), frac(OpenCL), frac(XeonPhi)
	if !(c < o && o < x) {
		t.Errorf("hard fractions not ordered: CUDA %.3f, OpenCL %.3f, Xeon %.3f", c, o, x)
	}
}

func TestSectionStructure(t *testing.T) {
	g := Generate(CUDA, 1)
	if g.Doc.Title == "" {
		t.Error("missing title")
	}
	if len(g.Doc.Sections) < 10 {
		t.Errorf("only %d sections", len(g.Doc.Sections))
	}
	// the evaluation chapter must be titled Performance Guidelines
	sec := g.SectionOf(g.EvalStart)
	if !strings.HasPrefix(sec, "5.") {
		t.Errorf("eval chapter section = %q", sec)
	}
	if g.SectionOf(-1) != "" || g.SectionOf(len(g.Sentences)) != "" {
		t.Error("out-of-range SectionOf should be empty")
	}
}

func TestGenerateSized(t *testing.T) {
	g := GenerateSized(CUDA, 200, 0.2, 3)
	if len(g.Sentences) != 200 {
		t.Errorf("size = %d", len(g.Sentences))
	}
	adv := g.AdvisingCount()
	if adv < 30 || adv > 60 {
		t.Errorf("advising count %d out of expected band", adv)
	}
}

func TestSimulateRatersAgreement(t *testing.T) {
	g := Generate(CUDA, 1)
	_, labels := g.EvalSentences()
	raters := SimulateRaters(labels, 3, 42)
	if len(raters) != 3 {
		t.Fatal("rater count")
	}
	// raters must agree with ground truth on the vast majority of sentences
	for r, v := range raters {
		if len(v) != len(labels) {
			t.Fatalf("rater %d length %d", r, len(v))
		}
		agree := 0
		for i := range v {
			if v[i] == labels[i].Advising {
				agree++
			}
		}
		if float64(agree)/float64(len(v)) < 0.9 {
			t.Errorf("rater %d agreement %.2f too low", r, float64(agree)/float64(len(v)))
		}
	}
}

func TestMajorityVote(t *testing.T) {
	raters := [][]bool{
		{true, false, true},
		{true, true, false},
		{false, true, true},
	}
	got := MajorityVote(raters)
	want := []bool{true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("vote %d = %v", i, got[i])
		}
	}
	if MajorityVote(nil) != nil {
		t.Error("empty raters should vote nil")
	}
}

func TestRegisterString(t *testing.T) {
	if CUDA.String() != "CUDA" || OpenCL.String() != "OpenCL" || XeonPhi.String() != "Xeon" {
		t.Error("register names")
	}
	if Register(99).String() != "unknown" {
		t.Error("unknown register")
	}
}

func TestFillDeterministicSlots(t *testing.T) {
	g1 := Generate(XeonPhi, 5)
	g2 := Generate(XeonPhi, 5)
	for i := range g1.Sentences {
		if g1.Sentences[i].Text != g2.Sentences[i].Text {
			t.Fatal("slot filling nondeterministic")
		}
	}
	// no unresolved placeholders
	for _, s := range g1.Sentences {
		if strings.ContainsAny(s.Text, "{}") {
			t.Errorf("unresolved slot in %q", s.Text)
		}
	}
}

func BenchmarkGenerateCUDA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(CUDA, int64(i))
	}
}
