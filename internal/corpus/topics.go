package corpus

// nugget is a handwritten advising sentence placed verbatim in the guide.
// Nuggets carry the subtopic tags that define the relevance ground truth of
// the Table 6 query workloads; every advising sentence quoted in the paper
// appears here.
type nugget struct {
	text      string
	category  Category
	subtopic  string
	ambiguous bool
}

// topicPack names one section of the performance-guidelines chapter and the
// nuggets placed in it.
type topicPack struct {
	name    string
	title   string
	nuggets []nugget
	// explain holds non-advising explanatory sentences that share the
	// query vocabulary of the pack's topic — the material the full-doc
	// baseline trips over (the paper's §4.2 full-doc examples appear here
	// verbatim). Entries marked ambiguous contain flagging-word stems in
	// descriptive use and are expected Egeria false positives.
	explain []nugget
}

// cudaPacks carries 52 nuggets, matching the 52 ground-truth advising
// sentences of the paper's CUDA chapter-5 evaluation; subtopic counts match
// Table 6 (warp-efficiency 6, divergence 2, mem-alignment 7,
// mem-instruction 8, instr-latency 11, mem-bandwidth 18).
var cudaPacks = []topicPack{
	{
		name: "utilization", title: "Maximize Utilization",
		nuggets: []nugget{
			{text: "The number of threads per block should be chosen as a multiple of the warp size to avoid wasting computing resources with under-populated warps as much as possible.", category: CatPurpose, subtopic: "warp-efficiency"},
			{text: "Use a launch configuration that keeps every warp scheduler supplied with eligible warps on each cycle.", category: CatImperative, subtopic: "warp-efficiency"},
			{text: "Developers can raise warp execution efficiency by assigning complete warps to uniform work and handling the ragged remainder separately.", category: CatSubject, subtopic: "warp-efficiency"},
			{text: "It is better to split an oversized block into several smaller blocks so that the scheduler can cover stalls with work from another block.", category: CatComparative, subtopic: "warp-efficiency"},
			{text: "Sizing the grid to several blocks per multiprocessor is a good choice because it keeps warp slots filled while some blocks wait at barriers.", category: CatKeyword, subtopic: "warp-efficiency"},
			{text: "Having multiple resident blocks per multiprocessor can help hide idling at synchronization points, as warps from different blocks do not wait for each other.", category: CatKeyword, subtopic: "instr-latency"},
			{text: "The application should maximize parallel execution between the host, the devices, and the bus.", category: CatSubject, subtopic: "instr-latency"},
		},
		explain: []nugget{
			{text: "Execution time varies depending on the instruction, but it is typically about twenty-two clock cycles, which translates to twenty-two resident warps needed to hide it."},
			{text: "A warp executes one common instruction at a time, so full efficiency is realized when all thirty-two threads of a warp agree on their execution path."},
			{text: "The multiprocessor partitions its warps among the warp schedulers, which issue instructions for eligible warps on every clock."},
			{text: "Theoretical occupancy reported by the profiler is the ratio of resident warps to the maximum number of warps per multiprocessor."},
			{text: "Blocks are distributed to multiprocessors at launch and remain resident until every warp of the block retires."},
		},
	},
	{
		name: "latency", title: "Multiprocessor Level",
		nuggets: []nugget{
			{text: "Ensure that enough warps stay resident so that the latency of one instruction is hidden by issuing instructions from other warps.", category: CatImperative, subtopic: "instr-latency"},
			{text: "Register usage can be controlled using the maxrregcount compiler option or launch bounds.", category: CatPassive, subtopic: "instr-latency"},
			{text: "Developers can parameterize the execution configuration based on register file size and shared memory size so the tuning survives a device change.", category: CatSubject, subtopic: "instr-latency"},
			{text: "It is recommended to expose enough instruction-level parallelism within each thread that back-to-back dependent operations never starve the schedulers.", category: CatComparative, subtopic: "instr-latency"},
			{text: "To minimize stalls from long scoreboard chains, interleave independent arithmetic between a load and its first use.", category: CatPurpose, subtopic: "instr-latency"},
			{text: "Raising occupancy can be useful when latency dominates, but past the plateau extra warps displace registers and hurt.", category: CatKeyword, subtopic: "instr-latency", ambiguous: true},
			{text: "Use the occupancy calculator to pick the smallest block size that reaches the occupancy plateau.", category: CatImperative, subtopic: "instr-latency"},
		},
		explain: []nugget{
			{text: "The number of clock cycles it takes for a warp to be ready to execute its next instruction is called the latency."},
			{text: "Full utilization is achieved when all warp schedulers always have some instruction to issue for some warp at every clock cycle during that latency period."},
			{text: "The number of warps required to keep the warp schedulers busy during high latency periods depends on the kernel code and its degree of instruction-level parallelism."},
			{text: "A register dependency stalls the warp until the producing instruction retires from the pipeline."},
		},
	},
	{
		name: "coalescing", title: "Device Memory Accesses",
		nuggets: []nugget{
			{text: "To maximize global memory throughput, it is therefore important to maximize coalescing by following the most optimal access patterns and using data types that meet the size and alignment requirement.", category: CatPurpose, subtopic: "mem-alignment"},
			{text: "Align the base address of each array to the transaction size so that a warp touches the fewest possible segments.", category: CatImperative, subtopic: "mem-alignment"},
			{text: "Align the leading dimension of a two-dimensional array with padding so that each row starts on a segment boundary.", category: CatImperative, subtopic: "mem-alignment"},
			{text: "It is more efficient to reorganize the data into a structure of arrays than to load interleaved fields from an array of structures.", category: CatComparative, subtopic: "mem-alignment"},
			{text: "Data types that satisfy the natural alignment requirement should be used for every global load and store.", category: CatKeyword, subtopic: "mem-alignment"},
			{text: "Programmers can stage irregular accesses through shared memory so that the global phase stays fully coalesced.", category: CatSubject, subtopic: "mem-alignment"},
			{text: "A stride that crosses the segment boundary splits each request, so align the per-thread access pattern to a stride of one word.", category: CatImperative, subtopic: "mem-alignment", ambiguous: true},
			{text: "The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.", category: CatPurpose, subtopic: "mem-bandwidth"},
		},
		explain: []nugget{
			{text: "Global memory is accessed via thirty-two, sixty-four, or one-hundred-twenty-eight byte transactions that must be naturally aligned."},
			{text: "When a warp executes an instruction that accesses global memory, it coalesces the accesses of the threads within the warp into one or more transactions depending on the distribution of addresses."},
			{text: "For global memory, as a general rule, the more scattered the addresses are, the more reduced the throughput is.", ambiguous: true},
			{text: "In general, the more transactions are necessary, the more unused words are transferred in addition to the words accessed by the threads, reducing the instruction throughput accordingly.", ambiguous: true},
		},
	},
	{
		name: "divergence", title: "Control Flow Instructions",
		nuggets: []nugget{
			{text: "To obtain best performance in cases where the control flow depends on the thread ID, the controlling condition should be written so as to minimize the number of divergent warps.", category: CatPurpose, subtopic: "divergence"},
			{text: "Schedule the work items so that threads of the same warp take the same branch direction.", category: CatImperative, subtopic: "divergence"},
			{text: "To minimize the cost of short conditional bodies, replace the branch with predication so that both paths issue without a jump.", category: CatPurpose, subtopic: "mem-instruction", ambiguous: true},
			{text: "The programmer can also control loop unrolling using the #pragma unroll directive.", category: CatSubject, subtopic: "instr-latency"},
		},
		explain: []nugget{
			{text: "Any flow control instruction can significantly impact the effective instruction throughput by causing threads of the same warp to diverge, that is, to follow different execution paths."},
			{text: "If divergence happens, the different execution paths are serialized, increasing the total number of instructions executed for this warp."},
			{text: "A divergent branch is reported by the profiler as lower warp execution efficiency."},
		},
	},
	{
		name: "instruction", title: "Maximize Instruction Throughput",
		nuggets: []nugget{
			{text: "To maximize instruction throughput the application should minimize the use of arithmetic instructions with low throughput, trading precision for speed when it does not affect the end result.", category: CatPurpose, subtopic: "mem-instruction"},
			{text: "Use intrinsic functions instead of the regular math library when the reduced accuracy is acceptable.", category: CatImperative, subtopic: "mem-instruction"},
			{text: "Single-precision constants defined with an f suffix should be used to keep the computation off the slow double-precision path.", category: CatKeyword, subtopic: "mem-instruction"},
			{text: "It is faster to flush denormalized numbers to zero than to honor them in every multiply.", category: CatComparative, subtopic: "mem-instruction"},
			{text: "Avoid synchronization points whenever possible, for example by using warp-synchronous programming inside a single warp.", category: CatImperative, subtopic: "mem-instruction", ambiguous: true},
			{text: "Restricted pointers can be leveraged to give the compiler the aliasing freedom it needs to reorder loads.", category: CatPassive, subtopic: "mem-instruction"},
			{text: "The application should favor shifts and masks over integer division and modulo by powers of two.", category: CatSubject, subtopic: "mem-instruction"},
			{text: "Fusing short dependent kernels removes launch and drain overhead that no amount of occupancy wins back.", category: CatHard, subtopic: "instr-latency", ambiguous: true},
		},
		explain: []nugget{
			{text: "The throughput of native arithmetic instructions varies by compute capability and operand type."},
			{text: "Double-precision operations execute at a lower rate than single-precision operations on this device family."},
			{text: "The compiler inserts synchronization points where the dependence analysis cannot prove independence."},
		},
	},
	{
		name: "bandwidth", title: "Maximize Memory Throughput",
		nuggets: []nugget{
			{text: "Avoid unnecessary data transfers between the host and the device, because the bus has far lower bandwidth than device memory.", category: CatImperative, subtopic: "mem-bandwidth"},
			{text: "One way to raise effective bandwidth is batching many small transfers into a single large one.", category: CatKeyword, subtopic: "mem-bandwidth"},
			{text: "Use page-locked host memory for transfers that recur every iteration.", category: CatImperative, subtopic: "mem-bandwidth"},
			{text: "Developers can map pinned host memory into the device address space so short transfers overlap with execution automatically.", category: CatSubject, subtopic: "mem-bandwidth"},
			{text: "It is often better to recompute a value on the device than to fetch it over the bus.", category: CatComparative, subtopic: "mem-bandwidth"},
			{text: "Move intermediate data structures entirely into device memory so they are created, used, and destroyed without ever touching the host.", category: CatImperative, subtopic: "mem-bandwidth"},
			{text: "Shared memory can be leveraged to keep reused tiles close to the execution units and off the device memory path.", category: CatPassive, subtopic: "mem-bandwidth"},
			{text: "To minimize redundant traffic, stage the halo region once per block instead of refetching it per thread.", category: CatPurpose, subtopic: "mem-bandwidth"},
			{text: "The texture path is a good choice for read-only data with two-dimensional locality that defeats the linear caches.", category: CatKeyword, subtopic: "mem-bandwidth"},
			{text: "Applications should coalesce writes as aggressively as reads, since write transactions occupy the same controller queues.", category: CatSubject, subtopic: "mem-bandwidth"},
			{text: "It is desirable to size the working set of each block to fit in the L2 slice it maps onto.", category: CatKeyword, subtopic: "mem-bandwidth", ambiguous: true},
			{text: "Compressing index data to sixteen bits halves its traffic and rarely costs measurable compute.", category: CatHard, subtopic: "mem-bandwidth", ambiguous: true},
			{text: "Streams can be leveraged to overlap a transfer in one direction with a kernel and a transfer in the other direction.", category: CatPassive, subtopic: "mem-bandwidth"},
			{text: "To achieve peak bus utilization, keep at least two transfers outstanding in each direction.", category: CatPurpose, subtopic: "mem-bandwidth"},
			{text: "Write-combined host allocations should be used for buffers the host only writes, freeing the host caches for other data.", category: CatKeyword, subtopic: "mem-bandwidth"},
			{text: "Avoid mapping the same buffer for read and write in the same kernel when a private accumulator suffices.", category: CatImperative, subtopic: "mem-bandwidth"},
			{text: "A transpose staged through shared memory turns strided global stores into unit-stride ones at negligible cost.", category: CatHard, subtopic: "mem-bandwidth", ambiguous: true},
		},
		explain: []nugget{
			{text: "The effective bandwidth of each memory space depends significantly on the memory access pattern."},
			{text: "Device memory and the bus differ by an order of magnitude in both bandwidth and latency."},
			{text: "A cache hit reduces DRAM bandwidth demand but not fetch latency.", ambiguous: true},
			{text: "The copy engine moves data between host memory and device memory independently of the compute engines."},
			{text: "Pinned memory pages cannot be swapped by the operating system, which is what makes asynchronous transfers possible."},
		},
	},
	{
		name: "warp-detail", title: "Warp Execution",
		nuggets: []nugget{
			{text: "This synchronization guarantee can often be leveraged to avoid explicit barrier calls that lower warp execution efficiency between producer and consumer warps.", category: CatPassive, subtopic: "warp-efficiency"},
		},
	},
}

// openclPacks: nuggets in the AMD OpenCL register (queries in Table 6 are
// CUDA-only, so subtopics here are informational).
var openclPacks = []topicPack{
	{
		name: "buffers", title: "OpenCL Memory Objects",
		nuggets: []nugget{
			{text: "Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.", category: CatComparative, subtopic: "buffers"},
			{text: "This can be a good choice when the host does not read the memory object to avoid the host having to make a copy of the data to transfer.", category: CatKeyword, subtopic: "buffers"},
			{text: "Pinning takes time, so avoid incurring pinning costs where CPU overhead must be avoided.", category: CatImperative, subtopic: "transfers"},
			{text: "This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions.", category: CatPassive, subtopic: "queues"},
		},
		explain: []nugget{
			{text: "A buffer object stores a one-dimensional collection of elements, while an image object stores a two-dimensional or three-dimensional texture."},
			{text: "Pinning locks the host pages so the DMA engine can address them directly."},
			{text: "The runtime copies unpinned host data through an internal staging area."},
		},
	},
	{
		name: "wavefront", title: "Wavefront and Work-Group Tuning",
		nuggets: []nugget{
			{text: "For peak performance on all devices, developers can choose to use conditional compilation for key code loops in the kernel, or in some cases even provide two separate kernels.", category: CatSubject, subtopic: "kernels"},
			{text: "Choose a work-group size that is a multiple of the wavefront size to keep every lane of the SIMD occupied.", category: CatImperative, subtopic: "wavefront"},
			{text: "It is recommended to keep at least four wavefronts resident per compute unit so memory latency can be covered.", category: CatComparative, subtopic: "wavefront"},
			{text: "To minimize divergence across a wavefront, arrange the work so that neighboring work-items follow the same control path.", category: CatPurpose, subtopic: "wavefront"},
		},
		explain: []nugget{
			{text: "A wavefront executes sixty-four work-items in lockstep on one SIMD."},
			{text: "The compute unit interleaves wavefronts to cover instruction and fetch latency."},
			{text: "Work-groups are dispatched to compute units in submission order."},
		},
	},
	{
		name: "lds", title: "Local Data Share",
		nuggets: []nugget{
			{text: "As shown below, programmers must carefully control the bank bits to avoid bank conflicts as much as possible.", category: CatPurpose, subtopic: "lds", ambiguous: true},
			{text: "Use the LDS to share partial results within a work-group rather than spilling them to global memory.", category: CatImperative, subtopic: "lds"},
			{text: "The key to high LDS throughput is arranging the stride so that consecutive work-items hit distinct banks.", category: CatKeyword, subtopic: "lds"},
			{text: "Native functions are generally supported in hardware and can run substantially faster, although at somewhat lower accuracy.", category: CatHard, subtopic: "math", ambiguous: true},
		},
		explain: []nugget{
			{text: "The LDS provides thirty-two banks, each returning one value per cycle."},
			{text: "Requests that land in the same bank on the same cycle serialize.", ambiguous: true},
			{text: "The LDS is shared by all work-items of a work-group and is not visible across groups."},
		},
	},
}

// xeonPacks: nuggets in the Xeon Phi register, including the sentences that
// motivate the paper's §4.3 keyword tuning ('have to be', 'user', 'one').
var xeonPacks = []topicPack{
	{
		name: "vectorization", title: "Vectorization",
		nuggets: []nugget{
			{text: "Align the data on sixty-four byte boundaries so the compiler can emit aligned vector loads.", category: CatImperative, subtopic: "vectorization"},
			{text: "It is important to let the compiler report which loops vectorized and why the others did not.", category: CatKeyword, subtopic: "vectorization"},
			{text: "The arrays have to be padded to a full vector width before the inner loop can vectorize cleanly.", category: CatHard, subtopic: "vectorization", ambiguous: true},
			{text: "One can experiment with the simd pragma on the hottest loop and compare the generated code.", category: CatHard, subtopic: "vectorization", ambiguous: true},
		},
		explain: []nugget{
			{text: "The vector unit processes sixteen single-precision lanes per instruction."},
			{text: "Unaligned vector loads split into two issues on this core."},
			{text: "The compiler emits a remainder loop when the trip count is not a vector multiple."},
		},
	},
	{
		name: "threading", title: "Threading and Affinity",
		nuggets: []nugget{
			{text: "Users have to pin the OpenMP threads explicitly, because the default placement scatters them across cores.", category: CatHard, subtopic: "threading", ambiguous: true},
			{text: "Use a compact affinity when neighboring threads share data and a scattered affinity when they compete for cache.", category: CatImperative, subtopic: "threading"},
			{text: "Developers can oversubscribe each core with up to four hardware threads to cover in-order stalls.", category: CatSubject, subtopic: "threading"},
			{text: "To achieve balanced execution, schedule the loop with dynamic chunks once the iteration costs vary.", category: CatPurpose, subtopic: "threading"},
		},
		explain: []nugget{
			{text: "Each core issues instructions from up to four hardware threads in round-robin order."},
			{text: "The default affinity scatters software threads across the available cores."},
			{text: "A stalled thread donates its issue slots to the other threads of the core."},
		},
	},
	{
		name: "memory", title: "Memory and Prefetching",
		nuggets: []nugget{
			{text: "It is often beneficial to tune the prefetch distance by hand for streams the compiler mispredicts.", category: CatComparative, subtopic: "prefetch"},
			{text: "Blocking the loops for the second-level cache should be attempted before any threading change.", category: CatKeyword, subtopic: "blocking"},
			{text: "The offload data transfers can be controlled using explicit in and out clauses on each pragma.", category: CatPassive, subtopic: "offload"},
			{text: "One has to keep the data resident on the coprocessor across offload regions, or the bus consumes the speedup.", category: CatHard, subtopic: "offload", ambiguous: true},
		},
		explain: []nugget{
			{text: "The software prefetcher covers strides the hardware prefetcher mispredicts."},
			{text: "Offload regions marshal their data over the bus before the region body runs."},
			{text: "The second-level cache is private to each core and inclusive of the first level."},
		},
	},
}

func packsFor(reg Register) []topicPack {
	switch reg {
	case CUDA:
		return cudaPacks
	case OpenCL:
		return openclPacks
	default:
		return xeonPacks
	}
}

// slotsFor returns the per-register slot vocabulary used by the template
// banks. Values are chosen to be selector-neutral: no flagging stems, no key
// subjects, no bare imperative-word roots where they would corrupt a
// template's category.
func slotsFor(reg Register) map[string][]string {
	common := map[string][]string{
		"num":    {"two", "four", "eight", "sixteen", "thirty-two"},
		"metric": {"occupancy", "issue efficiency", "bandwidth utilization", "cache hit rate", "sustained throughput"},
		"subject": {
			"developers", "programmers",
		},
	}
	var specific map[string][]string
	switch reg {
	case CUDA:
		// NOTE: the CUDA bulk-slot vocabulary deliberately avoids the
		// salient terms of the six Table 6 queries (warp, block, occupancy,
		// coalescing, divergence, alignment, transfers, bandwidth, latency,
		// registers, unrolling, streams); those belong to the handwritten
		// nuggets that form the relevance ground truth. Bulk advice covers
		// the rest of the guide's subject matter (events, atomics,
		// reductions, allocation, launch mechanics).
		specific = map[string][]string{
			"np": {
				"the event pool", "the work queue", "the lookup table",
				"the reduction tree", "the histogram buffer",
				"the device allocator", "the scan phase",
				"the descriptor table", "the atomic counter",
				"the argument heap",
			},
			"np2": {
				"the runtime heap", "the upstream stage", "the launch queue",
				"the driver context", "the signal flag",
				"the cleanup kernel", "the setup pass",
			},
			"unit": {"execution engine", "dispatch port", "texture unit", "raster engine"},
			"tool": {"the visual profiler", "the timeline view", "the metrics report", "the sampling tool"},
			"goalvp": {
				"keep the event pool drained",
				"shorten the cleanup phase of the reduction",
				"cut the number of atomic retries",
				"keep the work queue from emptying",
				"lower the pressure on the device allocator",
			},
			"keyvp": {
				"minimize contention on the atomic counter",
				"maximize reuse of the lookup table",
				"avoid redundant initialization of the histogram buffer",
				"achieve steady progress in the scan phase",
				"minimize churn in the device allocator",
			},
			"impvp": {
				"use a private histogram per thread",
				"move the initialization into the setup kernel",
				"switch the reduction to the tree variant",
				"pack the flags into a single integer",
				"create the events once at startup",
				"call the asynchronous variant of the allocator",
			},
			"ger": {
				"preallocating the event pool",
				"splitting the histogram into private copies",
				"hoisting the allocation out of the loop",
				"folding the cleanup pass into the main kernel",
				"precomputing the index table",
			},
			"ger2": {
				"allocating inside the loop", "resetting the counters every pass",
				"rebuilding the table on each launch",
			},
			"cond": {
				"the counter saturates under contention",
				"the table fits in the constant region",
				"the queue drains between launches",
				"the reduction tree is shallow",
				"the setup cost repeats every frame",
			},
			"fact": {
				"Each engine retires one batch per cycle",
				"The allocator serves requests in submission order",
				"The event pool holds sixty-four entries",
				"The driver context tracks every outstanding launch",
			},
		}
	case OpenCL:
		specific = map[string][]string{
			"np": {
				"the LDS", "the staging buffer", "the image object",
				"the command queue", "the wavefront pool", "the constant buffer",
				"the pinned staging area", "the kernel argument buffer",
			},
			"np2": {
				"global memory", "the compute unit", "the DMA engine",
				"the channel boundary", "the second queue", "the host-visible heap",
			},
			"unit": {"compute unit", "SIMD", "DMA engine", "command processor"},
			"tool": {"the profiler", "the kernel analyzer", "the timeline trace"},
			"goalvp": {
				"keep every SIMD lane occupied", "cut channel conflicts on the interconnect",
				"keep both DMA engines streaming", "shorten the kernel launch tail",
				"lower the LDS pressure per work-group",
			},
			"keyvp": {
				"minimize divergence across the wavefront",
				"maximize utilization of the compute units",
				"avoid bank conflicts in the LDS",
				"achieve overlap between transfers and kernels",
				"minimize host synchronization stalls",
			},
			"impvp": {
				"use a work-group size that fills the wavefront",
				"unroll the reduction by the SIMD width",
				"align the buffer to the channel interleave",
				"pack the kernel arguments into one constant buffer",
				"move the event wait off the critical path",
			},
			"ger": {
				"padding the LDS rows", "staging tiles through the LDS",
				"batching the enqueue calls", "pre-pinning the transfer buffers",
				"splitting the kernel at the divergence point",
			},
			"ger2": {
				"reading global memory directly", "flushing the queue per call",
				"mapping the buffer every iteration",
			},
			"cond": {
				"the kernel is bound by fetch latency", "the wavefront diverges at the tail",
				"the queue drains between batches", "the image locality is two-dimensional",
				"the work-group shares a tile",
			},
			"fact": {
				"A wavefront executes sixty-four work-items in lockstep",
				"The LDS provides thirty-two banks per compute unit",
				"Each compute unit tracks forty wavefronts in flight",
			},
		}
	default: // XeonPhi
		specific = map[string][]string{
			"np": {
				"the vector unit", "the prefetch stream", "the tile buffer",
				"the offload region", "the thread pool", "the ring interconnect",
				"the per-core cache slice", "the streaming store path",
			},
			"np2": {
				"the second-level cache", "the coprocessor memory", "the host heap",
				"the adjacent core", "the loop nest", "the software prefetcher",
			},
			"unit": {"core", "vector unit", "ring stop", "memory channel"},
			"tool": {"the vectorization report", "the sampling profiler", "the affinity map"},
			"goalvp": {
				"keep the vector pipelines full", "cut the remainder loop iterations",
				"keep the ring traffic local to each quadrant",
				"shorten the offload warm-up phase",
				"lower the TLB miss rate of the stride",
			},
			"keyvp": {
				"maximize the vectorized fraction of the loop",
				"minimize remainder iterations at the loop tail",
				"avoid false sharing between neighboring threads",
				"achieve balanced work across all cores",
				"minimize transfers over the offload bus",
			},
			"impvp": {
				"use streaming stores for the output array",
				"align the arrays to the vector width",
				"unroll and jam the outer loop",
				"pack the strided fields into contiguous arrays",
				"move the allocation out of the offload region",
			},
			"ger": {
				"padding the innermost dimension", "blocking the loops for the cache",
				"pinning the threads to cores", "hoisting the transfers out of the loop",
				"splitting the loop at the dependence",
			},
			"ger2": {
				"relying on the default placement", "transferring per iteration",
				"leaving the tail loop scalar",
			},
			"cond": {
				"the loop carries no dependence", "the trip count is divisible by the vector width",
				"the threads share a cache slice", "the offload region repeats every step",
				"the stride defeats the hardware prefetcher",
			},
			"fact": {
				"Each core issues two instructions per cycle from separate threads",
				"The vector unit processes sixteen single-precision lanes",
				"The ring interconnect serializes requests within a quadrant",
			},
		}
	}
	for k, v := range common {
		specific[k] = v
	}
	return specific
}

// xeonTunableHard are advising sentences recognized only after the paper's
// §4.3 Xeon keyword tuning ('have to be' in FLAGGING WORDS, 'user'/'one' in
// KEY SUBJECTS). They pad the Xeon hard pool so the default-config recall
// sits near the paper's 0.71 and rises under XeonTunedConfig.
var xeonTunableHard = []sentenceTemplate{
	{text: "The buffers have to be aligned before the compiler will vectorize the copy loop.", category: CatHard},
	{text: "The loop bounds have to be visible at compile time for the unroller to act.", category: CatHard},
	{text: "The transfers have to be hoisted out of the timestep loop, or the bus dominates.", category: CatHard},
	{text: "Users can force a compact placement through the affinity environment variable.", category: CatHard},
	{text: "Users can retune the chunk size after every change to the loop body.", category: CatHard},
	{text: "One can interleave the two passes once the dependence is split.", category: CatHard},
	{text: "One can trade a little accuracy for bandwidth by storing the field in single precision.", category: CatHard},
}
