package corpus

import (
	"fmt"
	"strings"
)

// RenderHTML serializes the guide as an HTML document in the shape of a
// vendor guide (title, hN headings with section numbers, one paragraph per
// block). Feeding the result through htmldoc.Parse reproduces the guide's
// sentences, which lets integration tests exercise the production HTML path
// (document loader -> advisor) against known ground truth.
func (g *Guide) RenderHTML() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(escapeHTML(g.Doc.Title))
	b.WriteString("</title></head>\n<body>\n")
	for _, sec := range g.Doc.Sections {
		level := sec.Level
		if level < 1 {
			level = 1
		}
		if level > 6 {
			level = 6
		}
		heading := sec.Title
		if sec.Number != "" {
			heading = sec.Number + ". " + sec.Title
		}
		fmt.Fprintf(&b, "<h%d>%s</h%d>\n", level, escapeHTML(heading), level)
		for _, block := range sec.Blocks {
			fmt.Fprintf(&b, "<p>%s</p>\n", escapeHTML(block))
		}
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func escapeHTML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
	)
	return r.Replace(s)
}
