// Package corpus synthesizes the evaluation corpora of the Egeria
// reproduction. The paper evaluates on three vendor documents (the NVIDIA
// CUDA C Programming Guide, the AMD OpenCL Optimization Guide and the Intel
// Xeon Phi Best Practice Guide) with ground-truth advising labels produced
// by three human experts. Neither the documents nor the labels are available
// offline, so this package generates synthetic guides in the same registers:
//
//   - sentences are instantiated from category-tagged templates written in
//     the style of each guide (every example sentence quoted in the paper is
//     included verbatim as a "nugget"),
//   - each sentence carries its ground-truth label by construction
//     (the template's advising category, or non-advising),
//   - guide sizes mirror the paper's Table 7 (2140 / 1944 / 558 sentences),
//   - a designated "performance guidelines" chapter provides the labeled
//     evaluation subset of Table 8,
//   - advising "nuggets" carry subtopic tags that define the relevance
//     ground truth for the Table 6 query workloads,
//   - templates include hard advising sentences (no selector pattern) and
//     keyword traps (non-advising sentences containing keywords) so that
//     precision/recall land in realistic ranges rather than at 1.0.
//
// Generation is deterministic for a given (register, seed).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/htmldoc"
)

// Register selects the guide style to generate.
type Register int

// The three registers of the paper's evaluation.
const (
	CUDA Register = iota
	OpenCL
	XeonPhi
)

// String names the register like the paper's tables do.
func (r Register) String() string {
	switch r {
	case CUDA:
		return "CUDA"
	case OpenCL:
		return "OpenCL"
	case XeonPhi:
		return "Xeon"
	}
	return "unknown"
}

// Category is the paper's Table 1 advising sentence category (1-6);
// 0 marks non-advising sentences.
type Category int

// Sentence categories.
const (
	NonAdvising    Category = iota // 0
	CatKeyword                     // 1 — Table 1 category I
	CatComparative                 // 2
	CatPassive                     // 3
	CatImperative                  // 4
	CatSubject                     // 5
	CatPurpose                     // 6
	// CatHard marks advising sentences deliberately outside every selector
	// pattern (the recall ceiling of the multi-layered design).
	CatHard // 7
)

// Label is the ground-truth annotation of one generated sentence.
type Label struct {
	Advising  bool
	Category  Category
	Topic     string // coarse topic ("divergence", "coalescing", ...)
	Subtopic  string // nugget tag targeted by Table 6 queries ("" for bulk)
	Ambiguous bool   // simulated raters disagree more often on these
}

// Guide is a generated document plus per-sentence ground truth.
type Guide struct {
	Register  Register
	Doc       *htmldoc.Document
	Sentences []htmldoc.Sentence // Doc.Sentences(), cached
	Labels    []Label            // aligned with Sentences
	// EvalStart/EvalEnd delimit (half-open) the labeled evaluation subset
	// of Table 8: the performance-guidelines chapter for CUDA/OpenCL, the
	// whole document for Xeon.
	EvalStart, EvalEnd int
}

// AdvisingCount returns the number of ground-truth advising sentences.
func (g *Guide) AdvisingCount() int {
	n := 0
	for _, l := range g.Labels {
		if l.Advising {
			n++
		}
	}
	return n
}

// EvalSentences returns the evaluation subset's sentence texts and labels.
func (g *Guide) EvalSentences() ([]string, []Label) {
	texts := make([]string, 0, g.EvalEnd-g.EvalStart)
	labels := make([]Label, 0, g.EvalEnd-g.EvalStart)
	for i := g.EvalStart; i < g.EvalEnd; i++ {
		texts = append(texts, g.Sentences[i].Text)
		labels = append(labels, g.Labels[i])
	}
	return texts, labels
}

// Texts returns all sentence texts of the guide.
func (g *Guide) Texts() []string {
	out := make([]string, len(g.Sentences))
	for i, s := range g.Sentences {
		out[i] = s.Text
	}
	return out
}

// SectionOf returns the section path string for sentence i.
func (g *Guide) SectionOf(i int) string {
	if i < 0 || i >= len(g.Sentences) {
		return ""
	}
	return g.Doc.Sections[g.Sentences[i].Section].Path()
}

// guideSpec fixes the per-register generation parameters, chosen so the
// generated corpora mirror the paper's Table 7 and Table 8 statistics.
type guideSpec struct {
	totalSentences int     // Table 7 column "sentences"
	advisingFrac   float64 // fraction of advising sentences overall
	hardFrac       float64 // fraction of advising sentences with no pattern
	trapFrac       float64 // fraction of non-advising that carry keyword traps
	evalSentences  int     // Table 8 labeled subset size
	evalAdvising   int     // Table 8 ground-truth advising count in subset
	title          string
}

func specFor(reg Register) guideSpec {
	switch reg {
	case CUDA:
		return guideSpec{
			totalSentences: 2140, advisingFrac: 0.145, hardFrac: 0.06,
			trapFrac: 0.10, evalSentences: 177, evalAdvising: 52,
			title: "CUDA C Programming Guide (synthetic register)",
		}
	case OpenCL:
		return guideSpec{
			totalSentences: 1944, advisingFrac: 0.235, hardFrac: 0.17,
			trapFrac: 0.12, evalSentences: 556, evalAdvising: 128,
			title: "OpenCL Optimization Guide (synthetic register)",
		}
	default:
		return guideSpec{
			totalSentences: 558, advisingFrac: 0.215, hardFrac: 0.26,
			trapFrac: 0.13, evalSentences: 558, evalAdvising: 120,
			title: "Xeon Phi Best Practice Guide (synthetic register)",
		}
	}
}

// Generate produces the full-size synthetic guide for a register, sized per
// the paper's Table 7. Deterministic in (reg, seed).
func Generate(reg Register, seed int64) *Guide {
	return generate(reg, specFor(reg), seed)
}

// GenerateSized produces a custom-size guide (used by scaling benchmarks).
func GenerateSized(reg Register, nSentences int, advisingFrac float64, seed int64) *Guide {
	spec := specFor(reg)
	spec.totalSentences = nSentences
	spec.advisingFrac = advisingFrac
	spec.evalSentences = nSentences
	spec.evalAdvising = int(float64(nSentences) * advisingFrac)
	return generate(reg, spec, seed)
}

// fill substitutes {slot} placeholders in a template from the topic pack's
// slot map, choosing deterministically via rng.
func fill(rng *rand.Rand, tmpl string, slots map[string][]string) string {
	var b strings.Builder
	for {
		i := strings.IndexByte(tmpl, '{')
		if i < 0 {
			b.WriteString(tmpl)
			break
		}
		j := strings.IndexByte(tmpl[i:], '}')
		if j < 0 {
			b.WriteString(tmpl)
			break
		}
		b.WriteString(tmpl[:i])
		key := tmpl[i+1 : i+j]
		choices := slots[key]
		if len(choices) == 0 {
			b.WriteString(fmt.Sprintf("{%s}", key))
		} else {
			b.WriteString(choices[rng.Intn(len(choices))])
		}
		tmpl = tmpl[i+j+1:]
	}
	return b.String()
}

// sentenceCase uppercases the first letter of s.
func sentenceCase(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}
