package gpusim

// Models of the four benchmark programs of the paper's Table 6 (§4.2). Each
// baseline kernel exhibits exactly the performance issues its NVVP report
// lists; the _opt variants apply the paper's stated fix:
//
//	knnjoin      thread divergence in the kernel (warp efficiency + branches)
//	knnjoin_opt  knnjoin after task reordering to reduce the divergence
//	trans        matrix transpose with many non-coalesced accesses
//	trans_opt    trans after staging the transpose through 2D/shared memory

// KNNJoinKernel models knnjoin.cu: a k-nearest-neighbor join whose variable
// candidate-list lengths make warps diverge heavily.
func KNNJoinKernel() Kernel {
	return Kernel{
		Name:             "knnjoin",
		Threads:          1 << 19,
		BlockSize:        128,
		RegsPerThread:    40,
		InstPerThread:    4000,
		LoadsPerThread:   30,
		StoresPerThread:  2,
		WordBytes:        4,
		CoalesceWaste:    2.0, // reads are mostly streamed
		DivergenceFactor: 3.2, // the headline problem
		HostBytes:        16e6,
	}
}

// KNNJoinOptKernel models knnjoin-opt.cu: the same join after reordering
// tasks so that warps process similar-length candidate lists together.
func KNNJoinOptKernel() Kernel {
	k := KNNJoinKernel()
	k.Name = "knnjoin_opt"
	k.DivergenceFactor = 1.2
	return k
}

// TransKernel models trans.cu: a naive matrix transpose in which either the
// loads or the stores are fully strided (non-coalesced).
func TransKernel() Kernel {
	return Kernel{
		Name:             "trans",
		Threads:          1 << 21,
		BlockSize:        32, // under-sized blocks: occupancy suffers too
		RegsPerThread:    24,
		InstPerThread:    150,
		LoadsPerThread:   1,
		StoresPerThread:  1,
		WordBytes:        4,
		CoalesceWaste:    16, // strided dimension touches one word per line
		DivergenceFactor: 1.0,
		HostBytes:        2e6,
	}
}

// TransOptKernel models trans-opt.cu: the transpose staged through shared
// memory (the paper mentions 2D surface memory) so both global phases are
// unit-stride.
func TransOptKernel() Kernel {
	k := TransKernel()
	k.Name = "trans_opt"
	k.CoalesceWaste = 1.3
	k.BlockSize = 256
	k.SharedPerBlock = 4 * 1024
	// with coalesced phases the kernel saturates DRAM: that is exactly the
	// "GPU Utilization is Limited by Memory Bandwidth" issue its report
	// shows (the remaining issue after the fix)
	return k
}

// BenchmarkKernels returns the four modeled programs keyed by report name.
func BenchmarkKernels() map[string]Kernel {
	return map[string]Kernel{
		"knnjoin":     KNNJoinKernel(),
		"knnjoin_opt": KNNJoinOptKernel(),
		"trans":       TransKernel(),
		"trans_opt":   TransOptKernel(),
	}
}
