package gpusim

import (
	"testing"
	"testing/quick"
)

func allOpts() []Optimization {
	return []Optimization{
		RemoveDivergence, CoalesceAccesses, TuneOccupancy,
		UnrollLoop, StageShared, PinTransfers,
	}
}

func TestFullOptimizationSpeedupBands(t *testing.T) {
	// The paper's Table 5 shape: applying the full optimization set yields
	// a larger speedup on the GTX 780 than on the GTX 480, with magnitudes
	// in the mid-single digits.
	base := NormKernel()
	opt := Apply(base, allOpts()...)
	s780 := Speedup(base, opt, GTX780())
	s480 := Speedup(base, opt, GTX480())
	if s780 <= s480 {
		t.Errorf("speedup ordering: 780 %.2f <= 480 %.2f", s780, s480)
	}
	if s780 < 5 || s780 > 11 {
		t.Errorf("780 full speedup %.2f outside [5, 11]", s780)
	}
	if s480 < 3 || s480 > 8 {
		t.Errorf("480 full speedup %.2f outside [3, 8]", s480)
	}
}

func TestFigure5DivergenceOptimization(t *testing.T) {
	// Fig. 5: removing the if-else divergence alone gives a real speedup.
	base := NormKernel()
	opt := Apply(base, RemoveDivergence)
	for _, d := range []Device{GTX780(), GTX480()} {
		s := Speedup(base, opt, d)
		if s < 1.05 {
			t.Errorf("%s: divergence removal speedup %.3f too small", d.Name, s)
		}
		if s > 2.5 {
			t.Errorf("%s: divergence removal speedup %.3f implausibly large", d.Name, s)
		}
	}
}

func TestEachOptimizationNeverSlows(t *testing.T) {
	base := NormKernel()
	for _, d := range []Device{GTX780(), GTX480()} {
		bt := base.TimeOn(d)
		for _, o := range allOpts() {
			ot := Apply(base, o).TimeOn(d)
			if ot > bt*1.0001 {
				t.Errorf("%s on %s slowed the kernel: %.6f -> %.6f", o, d.Name, bt, ot)
			}
		}
	}
}

// Property: applying any subset of optimizations never slows the kernel, on
// either device (monotonicity of the model).
func TestOptimizationSubsetsMonotone(t *testing.T) {
	base := NormKernel()
	devices := []Device{GTX780(), GTX480()}
	f := func(mask uint8) bool {
		var opts []Optimization
		for i := 0; i < NumOptimizations; i++ {
			if mask&(1<<i) != 0 {
				opts = append(opts, Optimization(i))
			}
		}
		k := Apply(base, opts...)
		for _, d := range devices {
			if k.TimeOn(d) > base.TimeOn(d)*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// Property: adding one more optimization to a subset never hurts.
func TestAddingOptimizationMonotone(t *testing.T) {
	base := NormKernel()
	d := GTX780()
	f := func(mask uint8, extra uint8) bool {
		var opts []Optimization
		for i := 0; i < NumOptimizations; i++ {
			if mask&(1<<i) != 0 {
				opts = append(opts, Optimization(i))
			}
		}
		with := append(append([]Optimization{}, opts...), Optimization(int(extra)%NumOptimizations))
		return Apply(base, with...).TimeOn(d) <= Apply(base, opts...).TimeOn(d)*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestApplyIdempotentAndOrderIndependent(t *testing.T) {
	base := NormKernel()
	a := Apply(base, RemoveDivergence, StageShared, UnrollLoop)
	b := Apply(base, UnrollLoop, RemoveDivergence, StageShared)
	c := Apply(base, RemoveDivergence, RemoveDivergence, StageShared, UnrollLoop, UnrollLoop)
	if a != b || a != c {
		t.Errorf("apply not canonical: %+v vs %+v vs %+v", a, b, c)
	}
}

func TestOccupancyBehaviour(t *testing.T) {
	d := GTX780()
	base := NormKernel()
	occBase := base.Occupancy(d)
	tuned := Apply(base, TuneOccupancy)
	occTuned := tuned.Occupancy(d)
	if occTuned <= occBase {
		t.Errorf("occupancy did not improve: %.3f -> %.3f", occBase, occTuned)
	}
	if occBase <= 0 || occBase > 1 || occTuned > 1 {
		t.Errorf("occupancy out of range: %.3f, %.3f", occBase, occTuned)
	}
	var zero Kernel
	if zero.Occupancy(d) != 0 {
		t.Error("zero kernel occupancy")
	}
}

func TestSharedMemoryLimitsOccupancy(t *testing.T) {
	d := GTX780()
	k := NormKernel()
	k.BlockSize = 256
	k.SharedPerBlock = d.SharedPerSM // one block per SM at most
	occ := k.Occupancy(d)
	if occ > float64(256/32)/float64(d.MaxWarpsPerSM)+1e-9 {
		t.Errorf("shared memory should cap occupancy, got %.3f", occ)
	}
}

func TestPinnedTransfersFaster(t *testing.T) {
	d := GTX480()
	base := NormKernel()
	pinned := Apply(base, PinTransfers)
	if pinned.TransferTime(d) >= base.TransferTime(d) {
		t.Error("pinned transfers not faster")
	}
	none := base
	none.HostBytes = 0
	if none.TransferTime(d) != 0 {
		t.Error("zero transfer bytes should cost nothing")
	}
}

func TestZeroKernel(t *testing.T) {
	var k Kernel
	if k.TimeOn(GTX780()) != 0 {
		t.Error("empty kernel should take zero time")
	}
	if s := Speedup(k, k, GTX780()); s != 1 {
		t.Errorf("degenerate speedup = %f", s)
	}
}

func TestOptimizationStrings(t *testing.T) {
	for i := 0; i < NumOptimizations; i++ {
		if Optimization(i).String() == "unknown" {
			t.Errorf("optimization %d unnamed", i)
		}
	}
	if Optimization(99).String() != "unknown" {
		t.Error("unknown optimization")
	}
}

func BenchmarkTimeOn(b *testing.B) {
	k := NormKernel()
	d := GTX780()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.TimeOn(d)
	}
}
