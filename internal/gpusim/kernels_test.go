package gpusim

import "testing"

func TestOptVariantsAreFaster(t *testing.T) {
	cases := []struct{ base, opt Kernel }{
		{KNNJoinKernel(), KNNJoinOptKernel()},
		{TransKernel(), TransOptKernel()},
	}
	for _, c := range cases {
		for _, d := range []Device{GTX780(), GTX480()} {
			s := Speedup(c.base, c.opt, d)
			if s <= 1.1 {
				t.Errorf("%s -> %s on %s: speedup %.2f too small", c.base.Name, c.opt.Name, d.Name, s)
			}
			if s > 20 {
				t.Errorf("%s -> %s on %s: speedup %.2f implausible", c.base.Name, c.opt.Name, d.Name, s)
			}
		}
	}
}

func TestKNNJoinIsDivergenceBound(t *testing.T) {
	// removing only the divergence must recover most of the gap to the
	// optimized variant — that is the paper's characterization of knnjoin
	base := KNNJoinKernel()
	opt := KNNJoinOptKernel()
	d := GTX780()
	full := Speedup(base, opt, d)
	divOnly := base
	divOnly.DivergenceFactor = opt.DivergenceFactor
	viaDiv := Speedup(base, divOnly, d)
	if viaDiv < full*0.95 {
		t.Errorf("divergence fix recovers only %.2f of %.2f", viaDiv, full)
	}
}

func TestTransIsCoalescingBound(t *testing.T) {
	base := TransKernel()
	d := GTX780()
	coalesced := base
	coalesced.CoalesceWaste = 1.3
	if s := Speedup(base, coalesced, d); s < 1.5 {
		t.Errorf("coalescing fix speedup %.2f too small for a transpose", s)
	}
}

func TestBenchmarkKernelsComplete(t *testing.T) {
	ks := BenchmarkKernels()
	for _, name := range []string{"knnjoin", "knnjoin_opt", "trans", "trans_opt"} {
		k, ok := ks[name]
		if !ok {
			t.Fatalf("missing kernel %s", name)
		}
		if k.Name != name {
			t.Errorf("kernel %s misnamed %q", name, k.Name)
		}
		if k.TimeOn(GTX780()) <= 0 {
			t.Errorf("kernel %s has no modeled time", name)
		}
	}
}
