// Package gpusim implements a simplified analytic GPU kernel performance
// model. The paper's Table 5 reports speedups that 37 students achieved by
// hand-optimizing a sparse-matrix normalization kernel (norm.cu) on two
// GPUs (GeForce GTX 780 and GTX 480); neither the hardware nor the students
// are available offline, so this model provides the substrate on which the
// simulated user study (package study) reproduces the causal chain the table
// measures: which optimizations a participant discovers determines the
// modeled kernel time, and therefore the speedup.
//
// The model combines a throughput term (instruction issue), a bandwidth term
// (memory traffic inflated by poor coalescing), and a latency term governed
// by Little's law (outstanding memory operations limited by resident warps,
// i.e. occupancy), plus host-transfer time. It is deliberately simple but
// monotone: every supported optimization improves (or preserves) modeled
// time, and the relative magnitudes follow the usual GPU lore.
package gpusim

import "math"

// Device models one GPU.
type Device struct {
	Name            string
	SMs             int     // streaming multiprocessors
	CoresPerSM      int     // scalar cores per SM
	ClockGHz        float64 // core clock
	MemBandwidthGBs float64 // device memory bandwidth
	PCIeGBs         float64 // host transfer bandwidth (pageable)
	PCIePinnedGBs   float64 // host transfer bandwidth (pinned)
	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	RegistersPerSM  int
	SharedPerSM     int // bytes
	WarpSize        int
	MemLatencyCyc   float64 // device memory latency in cycles
	L2Effect        float64 // fraction of scattered traffic absorbed by cache
}

// GTX780 models the newer of the paper's two study GPUs (Kepler-class).
func GTX780() Device {
	return Device{
		Name: "GeForce GTX 780", SMs: 12, CoresPerSM: 192, ClockGHz: 0.9,
		MemBandwidthGBs: 288, PCIeGBs: 3.0, PCIePinnedGBs: 6.0,
		MaxWarpsPerSM: 64, MaxBlocksPerSM: 16,
		RegistersPerSM: 65536, SharedPerSM: 49152, WarpSize: 32,
		MemLatencyCyc: 400, L2Effect: 0.15,
	}
}

// GTX480 models the older GPU (Fermi-class).
func GTX480() Device {
	return Device{
		Name: "GeForce GTX 480", SMs: 15, CoresPerSM: 32, ClockGHz: 1.4,
		MemBandwidthGBs: 177, PCIeGBs: 2.5, PCIePinnedGBs: 5.0,
		MaxWarpsPerSM: 48, MaxBlocksPerSM: 8,
		RegistersPerSM: 32768, SharedPerSM: 49152, WarpSize: 32,
		MemLatencyCyc: 500, L2Effect: 0.35,
	}
}

// Kernel describes one kernel launch's performance-relevant characteristics.
type Kernel struct {
	Name             string
	Threads          int // total threads launched
	BlockSize        int // threads per block
	RegsPerThread    int
	SharedPerBlock   int     // bytes
	InstPerThread    float64 // dynamic instructions per thread
	LoadsPerThread   float64 // global loads per thread
	StoresPerThread  float64
	WordBytes        int     // bytes per access
	CoalesceWaste    float64 // >=1: transaction inflation from scatter
	DivergenceFactor float64 // >=1: issue inflation from divergent branches
	HostBytes        float64 // bytes transferred host<->device per run
	Pinned           bool    // pinned host memory in use
	OverlapTransfers bool    // transfers overlapped with execution
}

// Occupancy returns the fraction of the device's warp slots the kernel can
// keep resident, limited by block size, registers and shared memory.
func (k Kernel) Occupancy(d Device) float64 {
	if k.BlockSize <= 0 {
		return 0
	}
	warpsPerBlock := (k.BlockSize + d.WarpSize - 1) / d.WarpSize
	byThreads := d.MaxWarpsPerSM / warpsPerBlock
	byBlocks := d.MaxBlocksPerSM
	byRegs := math.MaxInt32
	if k.RegsPerThread > 0 {
		byRegs = d.RegistersPerSM / (k.RegsPerThread * k.BlockSize)
	}
	byShared := math.MaxInt32
	if k.SharedPerBlock > 0 {
		byShared = d.SharedPerSM / k.SharedPerBlock
	}
	blocks := minInt(minInt(byThreads, byBlocks), minInt(byRegs, byShared))
	if blocks < 1 {
		blocks = 1
	}
	warps := blocks * warpsPerBlock
	if warps > d.MaxWarpsPerSM {
		warps = d.MaxWarpsPerSM
	}
	return float64(warps) / float64(d.MaxWarpsPerSM)
}

// KernelTime returns the modeled kernel execution time in seconds.
func (k Kernel) KernelTime(d Device) float64 {
	compute, mem, latency := k.Components(d)
	sum := compute + mem + latency
	max := math.Max(compute, math.Max(mem, latency))
	return max + 0.25*(sum-max)
}

// Components returns the three terms of the kernel model separately:
// instruction-throughput time, memory-bandwidth time, and latency-bound
// time (all seconds). Profilers derive utilization ratios from these.
func (k Kernel) Components(d Device) (compute, mem, latency float64) {
	if k.Threads == 0 {
		return 0, 0, 0
	}
	clock := d.ClockGHz * 1e9

	// instruction throughput term
	instTotal := float64(k.Threads) * k.InstPerThread * k.DivergenceFactor
	compute = instTotal / (float64(d.SMs*d.CoresPerSM) * clock)

	// divergent warps replay their memory instructions per taken path,
	// inflating traffic and outstanding requests as well as issue slots
	divMem := 1 + (k.DivergenceFactor-1)*0.5

	// bandwidth term: scattered traffic is partially absorbed by the cache
	waste := 1 + (k.CoalesceWaste-1)*(1-d.L2Effect)
	bytes := float64(k.Threads) * (k.LoadsPerThread + k.StoresPerThread) *
		float64(k.WordBytes) * waste * divMem
	mem = bytes / (d.MemBandwidthGBs * 1e9)

	// latency term (Little's law): outstanding memory ops bounded by
	// resident warps; each op holds a slot for the memory latency.
	occ := k.Occupancy(d)
	resident := occ * float64(d.MaxWarpsPerSM*d.SMs)
	if resident < 1 {
		resident = 1
	}
	memOps := float64(k.Threads) * (k.LoadsPerThread + k.StoresPerThread) * divMem / float64(d.WarpSize)
	latency = memOps * (d.MemLatencyCyc / clock) / resident
	return compute, mem, latency
}

// TransferTime returns the modeled host transfer time in seconds.
func (k Kernel) TransferTime(d Device) float64 {
	if k.HostBytes == 0 {
		return 0
	}
	bw := d.PCIeGBs
	if k.Pinned {
		bw = d.PCIePinnedGBs
	}
	t := k.HostBytes / (bw * 1e9)
	if k.OverlapTransfers {
		// overlapped transfers hide behind the kernel; only the
		// non-overlappable fraction remains exposed
		t *= 0.25
	}
	return t
}

// TimeOn returns the total modeled time (transfers + kernel) in seconds.
func (k Kernel) TimeOn(d Device) float64 {
	return k.KernelTime(d) + k.TransferTime(d)
}

// Speedup returns base.TimeOn(d) / k.TimeOn(d).
func Speedup(base, optimized Kernel, d Device) float64 {
	ot := optimized.TimeOn(d)
	if ot == 0 {
		return 1
	}
	return base.TimeOn(d) / ot
}

// Optimization identifies one source-level optimization of the study kernel.
type Optimization int

// The optimization space of the norm.cu case study (§4.1 lists the
// categories the students applied: memory optimizations, minimizing thread
// divergence, increasing parallelism, and minimizing instruction counts).
const (
	RemoveDivergence Optimization = iota // Fig. 5: if-else removal
	CoalesceAccesses                     // rearrange memory access instructions
	TuneOccupancy                        // tune block/grid dimensions
	UnrollLoop                           // #pragma unroll the hot loop
	StageShared                          // stage reused data in shared memory
	PinTransfers                         // pinned memory + overlapped streams
	NumOptimizations = 6
)

// String names the optimization.
func (o Optimization) String() string {
	switch o {
	case RemoveDivergence:
		return "remove thread divergence"
	case CoalesceAccesses:
		return "coalesce memory accesses"
	case TuneOccupancy:
		return "tune block and grid dimensions"
	case UnrollLoop:
		return "unroll the inner loop"
	case StageShared:
		return "stage reused data in shared memory"
	case PinTransfers:
		return "pin and overlap host transfers"
	}
	return "unknown"
}

// Apply returns a copy of k with the optimizations applied. Application is
// idempotent and order-independent.
func Apply(k Kernel, opts ...Optimization) Kernel {
	seen := map[Optimization]bool{}
	for _, o := range opts {
		if seen[o] {
			continue
		}
		seen[o] = true
		switch o {
		case RemoveDivergence:
			k.DivergenceFactor = 1.0
		case CoalesceAccesses:
			k.CoalesceWaste = 1.2
		case TuneOccupancy:
			k.BlockSize = 256
			k.RegsPerThread = 28
		case UnrollLoop:
			k.InstPerThread *= 0.80
		case StageShared:
			k.LoadsPerThread *= 0.45
			k.SharedPerBlock += 4096
		case PinTransfers:
			k.Pinned = true
			k.OverlapTransfers = true
		}
	}
	return k
}

// NormKernel returns the baseline sparse-matrix normalization kernel of the
// user study, with the performance problems the paper lists (memory
// accesses, thread divergence, loop controls, cache performance).
func NormKernel() Kernel {
	return Kernel{
		Name:             "norm",
		Threads:          1 << 20,
		BlockSize:        64,
		RegsPerThread:    31, // Table 3: "31 registers for each thread"
		SharedPerBlock:   0,
		InstPerThread:    1200,
		LoadsPerThread:   24,
		StoresPerThread:  4,
		WordBytes:        4,
		CoalesceWaste:    8,
		DivergenceFactor: 2.1,
		HostBytes:        8e6,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
