package tuning

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/selectors"
)

func xeonSample(t testing.TB) ([]string, []bool) {
	t.Helper()
	g := corpus.Generate(corpus.XeonPhi, 1)
	texts, labels := g.EvalSentences()
	truth := make([]bool, len(labels))
	for i, l := range labels {
		truth[i] = l.Advising
	}
	return texts, truth
}

// TestTuneReproducesXeonSection43 reproduces the paper's §4.3 workflow: on
// the Xeon guide, tuning must raise recall materially while holding
// precision, and the mined keywords must include the kinds the authors
// added by hand ('have to be' style flagging phrases or 'user'/'one'
// subjects).
func TestTuneReproducesXeonSection43(t *testing.T) {
	texts, labels := xeonSample(t)
	res, err := Tune(selectors.DefaultConfig(), texts, labels, Options{MaxSuggestions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("no suggestions accepted")
	}
	if res.After.Recall <= res.Before.Recall {
		t.Errorf("recall did not improve: %.3f -> %.3f", res.Before.Recall, res.After.Recall)
	}
	if res.After.F <= res.Before.F {
		t.Errorf("F did not improve: %.3f -> %.3f", res.Before.F, res.After.F)
	}
	if res.Before.Precision-res.After.Precision > 0.05 {
		t.Errorf("precision collapsed: %.3f -> %.3f", res.Before.Precision, res.After.Precision)
	}
	// the Xeon corpus' tunable hard sentences use 'have to be' and the
	// subjects 'user'/'one'; the miner should find at least one of them
	found := false
	for _, s := range res.Suggestions {
		kw := strings.ToLower(s.Keyword)
		if strings.Contains(kw, "have to") || strings.Contains(kw, "user") || kw == "one" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a §4.3-style keyword among suggestions: %+v", res.Suggestions)
	}
}

func TestTuneDeterministic(t *testing.T) {
	texts, labels := xeonSample(t)
	r1, err := Tune(selectors.DefaultConfig(), texts, labels, Options{MaxSuggestions: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(selectors.DefaultConfig(), texts, labels, Options{MaxSuggestions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Suggestions) != len(r2.Suggestions) {
		t.Fatal("nondeterministic suggestion count")
	}
	for i := range r1.Suggestions {
		if r1.Suggestions[i].Keyword != r2.Suggestions[i].Keyword {
			t.Errorf("suggestion %d differs: %q vs %q", i, r1.Suggestions[i].Keyword, r2.Suggestions[i].Keyword)
		}
	}
}

func TestTuneRespectsMaxSuggestions(t *testing.T) {
	texts, labels := xeonSample(t)
	res, err := Tune(selectors.DefaultConfig(), texts, labels, Options{MaxSuggestions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) > 1 {
		t.Errorf("%d suggestions, max 1", len(res.Suggestions))
	}
}

func TestTuneConfigExtendsNotMutates(t *testing.T) {
	texts, labels := xeonSample(t)
	base := selectors.DefaultConfig()
	nFlag, nSubj, nImp := len(base.FlaggingWords), len(base.KeySubjects), len(base.ImperativeWords)
	res, err := Tune(base, texts, labels, Options{MaxSuggestions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.FlaggingWords) != nFlag || len(base.KeySubjects) != nSubj || len(base.ImperativeWords) != nImp {
		t.Error("input config mutated")
	}
	added := (len(res.Config.FlaggingWords) - nFlag) +
		(len(res.Config.KeySubjects) - nSubj) +
		(len(res.Config.ImperativeWords) - nImp)
	if added != len(res.Suggestions) {
		t.Errorf("config grew by %d but %d suggestions", added, len(res.Suggestions))
	}
}

func TestTuneErrors(t *testing.T) {
	if _, err := Tune(selectors.DefaultConfig(), []string{"a"}, []bool{true, false}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Tune(selectors.DefaultConfig(), nil, nil, Options{}); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestTuneNoGainOnPerfectSample(t *testing.T) {
	// a sample the default config already classifies perfectly yields no
	// suggestions
	texts := []string{
		"Avoid bank conflicts in shared memory.",
		"The warp size is thirty-two threads.",
	}
	labels := []bool{true, false}
	res, err := Tune(selectors.DefaultConfig(), texts, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suggestions) != 0 {
		t.Errorf("unexpected suggestions: %+v", res.Suggestions)
	}
	if res.After.F != 1 {
		t.Errorf("F = %.3f", res.After.F)
	}
}

func TestFormatResult(t *testing.T) {
	texts, labels := xeonSample(t)
	res, err := Tune(selectors.DefaultConfig(), texts, labels, Options{MaxSuggestions: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "before:") || !strings.Contains(out, "after:") {
		t.Errorf("format:\n%s", out)
	}
}

func BenchmarkTune(b *testing.B) {
	g := corpus.GenerateSized(corpus.XeonPhi, 150, 0.25, 3)
	texts, labels := g.EvalSentences()
	truth := make([]bool, len(labels))
	for i, l := range labels {
		truth[i] = l.Advising
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tune(selectors.DefaultConfig(), texts, truth, Options{MaxSuggestions: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
