// Package tuning implements the keyword-tuning workflow behind the paper's
// §4.3: "A fine tuning of the list of keywords can further improve the
// performance. For example, given the Xeon guide, after we added one extra
// keyword into the FLAGGING WORDS list ('have to be') and two extra keywords
// into KEY SUBJECTS list ('user', 'one'), the recall is improved to 0.892
// with precision equaling 0.877."
//
// Given a small labeled sentence sample, the tuner mines candidate keywords
// from the false negatives of the current configuration (frequent stemmed
// n-grams for FLAGGING WORDS, subject lemmas for KEY SUBJECTS, imperative
// root lemmas for IMPERATIVE WORDS) and greedily accepts the candidates that
// raise F-measure on the sample, yielding an extended selectors.Config.
package tuning

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eval"
	"repro/internal/nlp"
	"repro/internal/postag"
	"repro/internal/selectors"
	"repro/internal/textproc"
)

// Target names the keyword set a suggestion extends.
type Target string

// The tunable keyword sets.
const (
	FlaggingWords   Target = "FLAGGING WORDS"
	KeySubjects     Target = "KEY SUBJECTS"
	ImperativeWords Target = "IMPERATIVE WORDS"
)

// Suggestion is one accepted keyword with its measured effect.
type Suggestion struct {
	Target  Target
	Keyword string
	Before  eval.PRF // sample metrics before adding the keyword
	After   eval.PRF // sample metrics after adding it
}

// Options bounds the tuning search.
type Options struct {
	MaxSuggestions   int     // stop after this many accepted keywords (default 5)
	MinGainF         float64 // minimum F improvement to accept (default 0.005)
	MaxPrecisionLoss float64 // reject keywords costing more precision (default 0.05)
	MaxNgram         int     // longest flagging phrase to mine (default 3)
	MinSupport       int     // candidate must appear in >= this many FNs (default 2)
}

func (o *Options) fill() {
	if o.MaxSuggestions == 0 {
		o.MaxSuggestions = 5
	}
	if o.MinGainF == 0 {
		o.MinGainF = 0.005
	}
	if o.MaxPrecisionLoss == 0 {
		o.MaxPrecisionLoss = 0.05
	}
	if o.MaxNgram == 0 {
		o.MaxNgram = 3
	}
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
}

// Result is the outcome of a tuning run.
type Result struct {
	Config      selectors.Config // the extended configuration
	Suggestions []Suggestion
	Before      eval.PRF
	After       eval.PRF
}

// Tune extends cfg with keywords mined from the labeled sample.
// sentences[i] is labeled advising iff labels[i]. The sample is also the
// evaluation set for the greedy acceptance test, matching how the paper's
// authors tuned against their labeled chapters.
func Tune(cfg selectors.Config, sentences []string, labels []bool, opts Options) (*Result, error) {
	if len(sentences) != len(labels) {
		return nil, fmt.Errorf("tuning: %d sentences but %d labels", len(sentences), len(labels))
	}
	if len(sentences) == 0 {
		return nil, fmt.Errorf("tuning: empty sample")
	}
	opts.fill()

	// annotate once; configurations only change keyword sets, not parses,
	// so every trial configuration scores against the same annotations
	anns := nlp.NewAnnotator().AnnotateAll(sentences)

	res := &Result{Config: cfg}
	cur := cfg
	curScore := scoreConfig(cur, anns, labels)
	res.Before = curScore

	for len(res.Suggestions) < opts.MaxSuggestions {
		fns := falseNegatives(cur, anns, labels)
		if len(fns) == 0 {
			break
		}
		candidates := mineCandidates(cur, anns, fns, opts)
		if len(candidates) == 0 {
			break
		}
		var best *Suggestion
		var bestCfg selectors.Config
		for _, cand := range candidates {
			trial := apply(cur, cand)
			s := scoreConfig(trial, anns, labels)
			if s.F-curScore.F < opts.MinGainF {
				continue
			}
			if curScore.Precision-s.Precision > opts.MaxPrecisionLoss {
				continue
			}
			if best == nil || s.F > best.After.F {
				sg := Suggestion{Target: cand.target, Keyword: cand.keyword, Before: curScore, After: s}
				best = &sg
				bestCfg = trial
			}
		}
		if best == nil {
			break
		}
		res.Suggestions = append(res.Suggestions, *best)
		cur = bestCfg
		curScore = best.After
	}
	res.Config = cur
	res.After = curScore
	return res, nil
}

// candidate is one keyword under consideration.
type candidate struct {
	target  Target
	keyword string
	support int
}

func apply(cfg selectors.Config, c candidate) selectors.Config {
	out := cfg
	switch c.target {
	case FlaggingWords:
		out.FlaggingWords = append(append([]string{}, cfg.FlaggingWords...), c.keyword)
	case KeySubjects:
		out.KeySubjects = append(append([]string{}, cfg.KeySubjects...), c.keyword)
	case ImperativeWords:
		out.ImperativeWords = append(append([]string{}, cfg.ImperativeWords...), c.keyword)
	}
	return out
}

func scoreConfig(cfg selectors.Config, anns []*nlp.Annotation, labels []bool) eval.PRF {
	rec := selectors.New(cfg)
	pred := make([]bool, len(anns))
	for i, a := range anns {
		pred[i] = rec.ClassifyAnnotated(a).Advising
	}
	return eval.Score(pred, labels)
}

func falseNegatives(cfg selectors.Config, anns []*nlp.Annotation, labels []bool) []int {
	rec := selectors.New(cfg)
	var out []int
	for i, a := range anns {
		if labels[i] && !rec.ClassifyAnnotated(a).Advising {
			out = append(out, i)
		}
	}
	return out
}

// mineCandidates collects keyword candidates from the false-negative
// sentences: stemmed n-grams (flagging), subject lemmas (key subjects), and
// base-verb clause-head lemmas (imperative words).
func mineCandidates(cfg selectors.Config, anns []*nlp.Annotation, fns []int, opts Options) []candidate {
	ngramSupport := map[string]int{}
	subjSupport := map[string]int{}
	impSupport := map[string]int{}

	existingFlag := map[string]bool{}
	for _, k := range cfg.FlaggingWords {
		existingFlag[strings.Join(textproc.StemAll(textproc.Words(k)), " ")] = true
	}
	existingSubj := map[string]bool{}
	for _, k := range cfg.KeySubjects {
		existingSubj[textproc.Lemma(k, textproc.NounClass)] = true
	}
	existingImp := map[string]bool{}
	for _, k := range cfg.ImperativeWords {
		existingImp[textproc.Lemma(k, textproc.VerbClass)] = true
	}

	for _, i := range fns {
		ann := anns[i]
		tree := ann.Tree
		words := tree.Words
		stems := ann.Stems // shared with the classifier, not re-stemmed
		seen := map[string]bool{}
		for n := 1; n <= opts.MaxNgram; n++ {
			for j := 0; j+n <= len(stems); j++ {
				gram := stems[j : j+n]
				if !usefulNgram(words[j:j+n], tree.Tags[j:j+n]) {
					continue
				}
				key := strings.Join(gram, " ")
				if existingFlag[key] || seen[key] {
					continue
				}
				seen[key] = true
				ngramSupport[strings.Join(words[j:j+n], " ")]++
			}
		}
		for _, s := range tree.AllSubjects() {
			lemma := textproc.Lemma(tree.Words[s], textproc.NounClass)
			if !existingSubj[lemma] && lemma != "" {
				subjSupport[lemma]++
			}
		}
		if root := tree.RootIndex(); root >= 0 && tree.Tags[root].IsVerb() && !tree.HasSubject(root) {
			lemma := tree.Lemma(root)
			if !existingImp[lemma] {
				impSupport[lemma]++
			}
		}
	}

	var out []candidate
	for k, sup := range ngramSupport {
		if sup >= opts.MinSupport {
			out = append(out, candidate{target: FlaggingWords, keyword: strings.ToLower(k), support: sup})
		}
	}
	for k, sup := range subjSupport {
		if sup >= opts.MinSupport {
			out = append(out, candidate{target: KeySubjects, keyword: k, support: sup})
		}
	}
	for k, sup := range impSupport {
		if sup >= opts.MinSupport {
			out = append(out, candidate{target: ImperativeWords, keyword: k, support: sup})
		}
	}
	// deterministic order: by support desc, then keyword
	sort.Slice(out, func(a, b int) bool {
		if out[a].support != out[b].support {
			return out[a].support > out[b].support
		}
		if out[a].target != out[b].target {
			return out[a].target < out[b].target
		}
		return out[a].keyword < out[b].keyword
	})
	// cap the per-round trial budget
	if len(out) > 60 {
		out = out[:60]
	}
	return out
}

// usefulNgram filters n-gram candidates: no punctuation or numbers, no
// leading/trailing stopword for multi-word grams (single stopwords are
// allowed inside, so "have to be" survives), and at least one content word.
func usefulNgram(words []string, tags []postag.Tag) bool {
	content := false
	for i, w := range words {
		if textproc.IsPunct(w) || textproc.IsNumeric(w) {
			return false
		}
		if tags[i] == postag.NNP {
			return false // proper nouns / identifiers do not generalize
		}
		if !textproc.IsStopword(w) {
			content = true
		}
		_ = i
	}
	if len(words) > 1 {
		// multi-word phrases may consist of function words ("have to be"),
		// but single bare stopwords are never useful
		return true
	}
	return content
}

// FormatResult renders the tuning outcome for humans.
func FormatResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "before: %s\n", r.Before)
	for _, s := range r.Suggestions {
		fmt.Fprintf(&b, "  + %-18s %-20q  F %.3f -> %.3f (R %.3f -> %.3f)\n",
			s.Target, s.Keyword, s.Before.F, s.After.F, s.Before.Recall, s.After.Recall)
	}
	fmt.Fprintf(&b, "after:  %s\n", r.After)
	return b.String()
}
