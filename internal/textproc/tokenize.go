// Package textproc provides the low-level text processing substrate used by
// every NLP layer of the Egeria reproduction: sentence segmentation, word
// tokenization, stemming (Porter), lemmatization, stopword filtering and
// normalization. All components are deterministic, allocation-conscious and
// safe for concurrent use (they hold no mutable state).
package textproc

import (
	"strings"
	"unicode"
)

// Token is a single word-level token with its position in the source text.
type Token struct {
	Text  string // the token text as it appeared (case preserved)
	Start int    // byte offset of the first byte in the source
	End   int    // byte offset one past the last byte
}

// common contractions whose clitic should be split off, keyed by the
// lowercase suffix that follows the apostrophe.
var cliticSuffixes = []string{"n't", "'ll", "'re", "'ve", "'s", "'d", "'m"}

// Tokenize splits text into word tokens in the style of the Penn Treebank /
// NLTK word tokenizer: punctuation is split from words, contractions are
// split at the clitic boundary ("don't" -> "do", "n't"), hyphenated words and
// identifiers containing underscores or dots (e.g. "clWaitForEvents()",
// "maxrregcount", "3.14f") are kept intact as single tokens because HPC
// guides are full of them.
func Tokenize(text string) []Token {
	var tokens []Token
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		switch {
		case r < 128 && unicode.IsSpace(r):
			i++
		case isWordByte(text[i]):
			j := i
			for j < n && isWordContinuation(text, j) {
				j++
			}
			word := text[i:j]
			tokens = appendWordSplittingClitics(tokens, word, i)
			i = j
		default:
			// punctuation: group runs of identical punctuation ("..." "--")
			j := i + 1
			for j < n && text[j] == text[i] && isGroupablePunct(text[i]) {
				j++
			}
			tokens = append(tokens, Token{Text: text[i:j], Start: i, End: j})
			i = j
		}
	}
	return tokens
}

// Words returns just the token strings of Tokenize(text).
func Words(text string) []string {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// isWordByte reports whether b can begin a word token.
func isWordByte(b byte) bool {
	return b == '_' || b == '#' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') ||
		(b >= '0' && b <= '9') || b >= 128
}

// isWordContinuation reports whether the byte at position j continues a word
// token that started earlier. Inner hyphens, dots between alphanumerics,
// apostrophes (handled later by clitic splitting) and identifier characters
// continue a word.
func isWordContinuation(text string, j int) bool {
	b := text[j]
	if isWordByte(b) {
		return true
	}
	if j == 0 || j+1 >= len(text) {
		return false
	}
	prev, next := text[j-1], text[j+1]
	switch b {
	case '-', '.', '/':
		// "non-coalesced", "3.14", "read/write"
		return isWordByte(prev) && isWordByte(next)
	case '\'':
		return isWordByte(prev) && isWordByte(next)
	case '(', ')':
		// keep "clWaitForEvents()" together: '(' directly followed by ')'
		if b == '(' && next == ')' && isWordByte(prev) {
			return true
		}
		if b == ')' && prev == '(' {
			return true
		}
		return false
	}
	return false
}

func isGroupablePunct(b byte) bool {
	return b == '.' || b == '-' || b == '*' || b == '=' || b == '_'
}

// appendWordSplittingClitics appends word (starting at byte offset off) to
// tokens, splitting a trailing contraction clitic if present.
func appendWordSplittingClitics(tokens []Token, word string, off int) []Token {
	lower := strings.ToLower(word)
	for _, suf := range cliticSuffixes {
		if len(lower) > len(suf) && strings.HasSuffix(lower, suf) {
			cut := len(word) - len(suf)
			tokens = append(tokens, Token{Text: word[:cut], Start: off, End: off + cut})
			tokens = append(tokens, Token{Text: word[cut:], Start: off + cut, End: off + len(word)})
			return tokens
		}
	}
	return append(tokens, Token{Text: word, Start: off, End: off + len(word)})
}

// IsPunct reports whether tok consists entirely of punctuation bytes.
func IsPunct(tok string) bool {
	if tok == "" {
		return true
	}
	for i := 0; i < len(tok); i++ {
		b := tok[i]
		if isWordByte(b) {
			return false
		}
	}
	return true
}

// IsNumeric reports whether tok looks like a number literal (integer, float,
// percentage, or a float with a C suffix like "3.14f" common in CUDA text).
func IsNumeric(tok string) bool {
	if tok == "" {
		return false
	}
	digits := 0
	for i := 0; i < len(tok); i++ {
		b := tok[i]
		switch {
		case b >= '0' && b <= '9':
			digits++
		case b == '.' || b == ',' || b == '%' || b == 'x' || b == 'X' || b == 'e' || b == 'E' || b == '+' || b == '-' || b == 'f' || b == 'F':
			// allowed non-digit characters inside numbers
		default:
			return false
		}
	}
	return digits > 0
}
