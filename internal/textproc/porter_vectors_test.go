package textproc

import "testing"

// Second batch of Porter reference vectors, drawn from the canonical
// voc.txt/output.txt pairs of the reference implementation, weighted toward
// suffix chains the guide register exercises.
func TestStemReferenceVectorsBatch2(t *testing.T) {
	cases := map[string]string{
		// step 1a plurals
		"accesses": "access", "addresses": "address", "processes": "process",
		"classes": "class", "buses": "buse", // Porter's quirk: "buses" -> "buse"
		"abilities": "abil", "matrices": "matric",
		// step 1b -ed/-ing with restoration
		"enabled": "enabl", "enabling": "enabl",
		"mapped": "map", "mapping": "map",
		"stopped": "stop", "stopping": "stop",
		"transferred": "transfer", "transferring": "transfer",
		"controlled": "control", "controlling": "control",
		"scheduled": "schedul", "scheduling": "schedul",
		"caching": "cach", "cached": "cach",
		"queueing": "queue", "queued": "queu",
		"freed":    "freed", // eed with m==0 stays
		"agreeing": "agre",
		// step 1c y->i
		"memory": "memori", "latency": "latenc", "efficiency": "effici",
		"occupancy": "occup", "hierarchy": "hierarchi",
		// step 2
		"optimization": "optim", "utilization": "util",
		"serialization": "serial", "vectorization": "vector",
		"locality": "local", "granularity": "granular",
		"effectiveness": "effect", "usefulness": "us",
		"generally": "gener", "typically": "typic",
		// step 3
		"duplicate": "duplic", "communicate": "commun",
		"hopeful": "hope", "wasteful": "wast",
		"darkness": "dark",
		// step 4
		"alignment": "align", "management": "manag", "measurement": "measur",
		"execution": "execut", "instruction": "instruct",
		"transaction": "transact", "synchronization": "synchron",
		"divergence": "diverg", "dependence": "depend",
		"collective": "collect", "repetitive": "repetit",
		"scalable": "scalabl", // m(scal)=1, -able kept; final e dropped? "scalable"->"scalabl"
		// step 5
		"rate": "rate", "core": "core", "tile": "tile",
		"pipeline": "pipelin", "single": "singl",
		"throttle": "throttl", "bundle": "bundl",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// Stemming conflation groups used by keyword matching across the code base:
// every member of a group must share one stem.
func TestStemConflationGroups(t *testing.T) {
	groups := [][]string{
		{"transfer", "transfers", "transferred", "transferring"},
		{"stride", "strides", "strided", "striding"},
		{"overlap", "overlaps", "overlapped", "overlapping"},
		{"schedule", "schedules", "scheduled", "scheduling"},
		{"pin", "pins", "pinned", "pinning"},
		{"batch", "batches", "batched", "batching"},
		{"encourage", "encouraged", "encourages", "encouraging"},
		{"prefer", "preferred", "prefers"},
		{"stage", "stages", "staged", "staging"},
		{"unroll", "unrolls", "unrolled", "unrolling"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != base {
				t.Errorf("Stem(%q) = %q, want %q (group %v)", w, got, base, g)
			}
		}
	}
}

// Words that must NOT conflate (distinct stems): stemming that merges these
// would corrupt retrieval.
func TestStemNoFalseConflation(t *testing.T) {
	pairs := [][2]string{
		{"warp", "wrap"},
		{"thread", "threat"},
		{"cache", "catch"},
		{"bank", "band"},
		{"host", "hoist"},
		{"stream", "string"},
	}
	for _, p := range pairs {
		if Stem(p[0]) == Stem(p[1]) {
			t.Errorf("false conflation: %q and %q both stem to %q", p[0], p[1], Stem(p[0]))
		}
	}
}
