package textproc

import "strings"

// Stem applies the Porter stemming algorithm (Porter, 1980) to word and
// returns the stem in lowercase. Words of length <= 2 are returned unchanged
// (lowercased), per the original algorithm. The NLTK extension LOGI->LOG in
// step 2 is included to match the behaviour of the stemmer the paper used.
func Stem(word string) string {
	w := []byte(strings.ToLower(word))
	if len(w) <= 2 {
		return string(w)
	}
	for _, b := range w {
		if b < 'a' || b > 'z' {
			// not a plain alphabetic word (identifier, number, ...):
			// leave untouched, vendor-guide identifiers must not be mangled.
			return string(w)
		}
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// StemAll stems each word of words, returning a new slice.
func StemAll(words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = Stem(w)
	}
	return out
}

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// a letter other than a, e, i, o, u, and other than y when preceded by a
// consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	}
	return true
}

// measure computes Porter's m: the number of VC sequences in [C](VC)^m[V].
func measure(w []byte) int {
	n := len(w)
	i := 0
	// skip initial consonants
	for i < n && isConsonant(w, i) {
		i++
	}
	m := 0
	for {
		// skip vowels
		for i < n && !isConsonant(w, i) {
			i++
		}
		if i >= n {
			return m
		}
		// skip consonants
		for i < n && isConsonant(w, i) {
			i++
		}
		m++
		if i >= n {
			return m
		}
	}
}

// containsVowel reports whether the stem w contains a vowel (*v* condition).
func containsVowel(w []byte) bool {
	for i := range w {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports the *d condition: ends with a double consonant.
func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports the *o condition: stem ends cvc where the final consonant
// is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isConsonant(w, n-3) || isConsonant(w, n-2) || !isConsonant(w, n-1) {
		return false
	}
	b := w[n-1]
	return b != 'w' && b != 'x' && b != 'y'
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r, assuming hasSuffix(w, s).
func replaceSuffix(w []byte, s, r string) []byte {
	return append(w[:len(w)-len(s)], r...)
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return replaceSuffix(w, "sses", "ss")
	case hasSuffix(w, "ies"):
		return replaceSuffix(w, "ies", "i")
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1] // eed -> ee
		}
		return w
	}
	applied := false
	if hasSuffix(w, "ed") && containsVowel(w[:len(w)-2]) {
		w = w[:len(w)-2]
		applied = true
	} else if hasSuffix(w, "ing") && containsVowel(w[:len(w)-3]) {
		w = w[:len(w)-3]
		applied = true
	}
	if !applied {
		return w
	}
	switch {
	case hasSuffix(w, "at"):
		return append(w, 'e')
	case hasSuffix(w, "bl"):
		return append(w, 'e')
	case hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleConsonant(w):
		last := w[len(w)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return w[:len(w)-1]
		}
		return w
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && containsVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i'
	}
	return w
}

// step2Rules are tried longest-match-wins within this ordered list; each
// applies only when measure(stem) > 0.
var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	{"logi", "log"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if hasSuffix(w, r.suf) {
			if measure(w[:len(w)-len(r.suf)]) > 0 {
				return replaceSuffix(w, r.suf, r.rep)
			}
			return w
		}
	}
	return w
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if hasSuffix(w, r.suf) {
			if measure(w[:len(w)-len(r.suf)]) > 0 {
				return replaceSuffix(w, r.suf, r.rep)
			}
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, suf := range step4Suffixes {
		if !hasSuffix(w, suf) {
			continue
		}
		stem := w[:len(w)-len(suf)]
		if measure(stem) <= 1 {
			return w
		}
		if suf == "ion" {
			if n := len(stem); n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return w
			}
		}
		return stem
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleConsonant(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
