package textproc

import (
	"testing"
	"testing/quick"
)

// Classic Porter test vectors from the original paper and the reference
// implementation's voc.txt/output.txt pairs.
func TestStemClassicVectors(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemHPCVocabulary(t *testing.T) {
	// Groups of inflections that must stem to the same string so keyword
	// matching after stemming works as in the paper ("argue", "argued",
	// "argues", "arguing" all reduce to "argu").
	groups := [][]string{
		{"argue", "argued", "argues", "arguing"},
		{"optimize", "optimized", "optimizes", "optimizing", "optimization"},
		{"coalesce", "coalesced", "coalescing"},
		{"diverge", "diverged", "diverging"},
		{"synchronize", "synchronized", "synchronizing", "synchronization"},
		{"allocate", "allocated", "allocating", "allocation"},
		{"parallelize", "parallelized", "parallelizing", "parallelization"},
		{"access", "accesses", "accessed", "accessing"},
		{"thread", "threads"},
		{"memory", "memories"},
		{"improve", "improved", "improves", "improving", "improvement"},
		{"recommend", "recommended", "recommends", "recommending"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != base {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, base, g[0])
			}
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "is", "be", "do", "on"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemLowercases(t *testing.T) {
	if got := Stem("Optimizations"); got != Stem("optimizations") {
		t.Errorf("case sensitivity: %q vs %q", got, Stem("optimizations"))
	}
}

func TestStemNonAlphaPassthrough(t *testing.T) {
	for _, w := range []string{"3.14", "maxrregcount", "clWaitForEvents()", "x86", "__restrict__"} {
		got := Stem(w)
		// identifiers must not be mangled (only lowercased)
		if len(got) > len(w) {
			t.Errorf("Stem(%q) = %q grew", w, got)
		}
		if got != w && got != lowerASCII(w) {
			t.Errorf("Stem(%q) = %q, want passthrough", w, got)
		}
	}
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// Property: stemming is idempotent for purely alphabetic words — stemming a
// stem changes nothing in the vast majority of cases. Porter is not exactly
// idempotent in theory, but it is on words it has already reduced; we check
// the weaker, always-true invariants instead: output never longer than input,
// and deterministic.
func TestStemInvariants(t *testing.T) {
	f := func(raw string) bool {
		// derive a plausible lowercase word from arbitrary input
		w := make([]byte, 0, len(raw))
		for i := 0; i < len(raw) && len(w) < 24; i++ {
			b := raw[i] | 0x20
			if b >= 'a' && b <= 'z' {
				w = append(w, b)
			}
		}
		word := string(w)
		s1 := Stem(word)
		s2 := Stem(word)
		if s1 != s2 {
			return false // nondeterministic
		}
		if len(s1) > len(word) && word != "" {
			// Porter may add a final 'e' in step 1b, but never grows the
			// word overall by more than one byte.
			if len(s1) > len(word)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStemAll(t *testing.T) {
	got := StemAll([]string{"threads", "running", "slowly"})
	want := []string{"thread", "run", "slowli"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("StemAll[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"maximization", "throughput", "divergent", "coalescing", "optimization", "recommended", "performance", "instructions"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
