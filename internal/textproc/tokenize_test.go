package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Use shared memory.", []string{"Use", "shared", "memory", "."}},
		{"a, b, and c", []string{"a", ",", "b", ",", "and", "c"}},
		{"", nil},
		{"   ", nil},
		{"one", []string{"one"}},
		{"GPU's memory", []string{"GPU", "'s", "memory"}},
		{"don't block", []string{"do", "n't", "block"}},
		{"it's fast; really fast!", []string{"it", "'s", "fast", ";", "really", "fast", "!"}},
		{"(see Section 5.2)", []string{"(", "see", "Section", "5.2", ")"}},
	}
	for _, c := range cases {
		got := Words(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeHPCIdentifiers(t *testing.T) {
	cases := []struct {
		in      string
		wantTok string
	}{
		{"use the maxrregcount compiler option", "maxrregcount"},
		{"avoid explicit clWaitForEvents() calls", "clWaitForEvents()"},
		{"defined with an f suffix such as 3.141592653589793f", "3.141592653589793f"},
		{"non-coalesced memory accesses", "non-coalesced"},
		{"devices of compute capability 3.x", "3.x"},
		{"the #pragma unroll directive", "#pragma"},
		{"use the __restrict__ keyword", "__restrict__"},
		{"the knnjoin.cu program", "knnjoin.cu"},
		{"read/write traffic", "read/write"},
	}
	for _, c := range cases {
		words := Words(c.in)
		found := false
		for _, w := range words {
			if w == c.wantTok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Words(%q) = %v, want it to contain %q", c.in, words, c.wantTok)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "Pinning takes time, so avoid incurring pinning costs."
	for _, tok := range Tokenize(text) {
		if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
			t.Fatalf("bad offsets for %+v", tok)
		}
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: token %q but slice %q", tok.Text, text[tok.Start:tok.End])
		}
	}
}

func TestTokenizeOffsetsNonOverlapping(t *testing.T) {
	text := "The number of threads per block should be chosen as a multiple of the warp size (32)."
	toks := Tokenize(text)
	for i := 1; i < len(toks); i++ {
		if toks[i].Start < toks[i-1].End {
			t.Errorf("overlapping tokens %v and %v", toks[i-1], toks[i])
		}
	}
}

func TestTokenizePunctGroups(t *testing.T) {
	words := Words("wait... what -- no")
	joined := strings.Join(words, " ")
	if joined != "wait ... what -- no" {
		t.Errorf("got %q", joined)
	}
}

// Property: every non-space byte of the input is covered by exactly one token.
func TestTokenizeCoversNonSpace(t *testing.T) {
	f := func(s string) bool {
		// restrict to printable ASCII to keep the property crisp
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] >= 32 && s[i] < 127 {
				clean = append(clean, s[i])
			}
		}
		text := string(clean)
		covered := make([]bool, len(text))
		for _, tok := range Tokenize(text) {
			for i := tok.Start; i < tok.End; i++ {
				if covered[i] {
					return false // overlap
				}
				covered[i] = true
			}
		}
		for i := 0; i < len(text); i++ {
			isSpace := text[i] == ' ' || text[i] == '\t' || text[i] == '\n' || text[i] == '\r'
			if !isSpace && !covered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: token texts concatenated in order appear in the input in order.
func TestTokenizeOrderedSubstrings(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		last := 0
		for _, tok := range toks {
			if tok.Start < last {
				return false
			}
			last = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsPunct(t *testing.T) {
	for _, p := range []string{".", ",", ";", "?!", "--", "(", ")", ""} {
		if !IsPunct(p) {
			t.Errorf("IsPunct(%q) = false, want true", p)
		}
	}
	for _, w := range []string{"a", "x86", "word", "3.14", "_t"} {
		if IsPunct(w) {
			t.Errorf("IsPunct(%q) = true, want false", w)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	for _, p := range []string{"3", "3.14", "100%", "0x1F", "1e6", "3.141592653589793f", "1,000"} {
		if !IsNumeric(p) {
			t.Errorf("IsNumeric(%q) = false, want true", p)
		}
	}
	for _, w := range []string{"", "pi", "three", "..", "x", "e"} {
		if IsNumeric(w) {
			t.Errorf("IsNumeric(%q) = true, want false", w)
		}
	}
}
