package textproc

import "strings"

// stopwordsRaw is the English stopword list (NLTK's list plus a few tokens
// that behave like stopwords in programming guides, e.g. "e.g", "i.e").
const stopwordsRaw = `
i me my myself we our ours ourselves you your yours yourself yourselves
he him his himself she her hers herself it its itself they them their
theirs themselves what which who whom this that these those am is are
was were be been being have has had having do does did doing a an the
and but if or because as until while of at by for with about against
between into through during before after above below to from up down in
out on off over under again further then once here there when where why
how all any both each few more most other some such no nor not only own
same so than too very s t can will just don should now d ll m o re ve
y ain aren couldn didn doesn hadn hasn haven isn ma mightn mustn needn
shan shouldn wasn weren won wouldn e.g i.e etc vs
`

var stopwordSet = buildLexicon(stopwordsRaw)

// IsStopword reports whether w is an English stopword. Matching is
// case-insensitive.
func IsStopword(w string) bool {
	return stopwordSet[strings.ToLower(w)]
}

// RemoveStopwords returns words with stopwords and pure punctuation tokens
// removed.
func RemoveStopwords(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if IsStopword(w) || IsPunct(w) {
			continue
		}
		out = append(out, w)
	}
	return out
}

// NormalizeTerms produces the canonical term sequence used by the retrieval
// layer: tokenize, lowercase, drop stopwords and punctuation, Porter-stem.
func NormalizeTerms(text string) []string {
	return NormalizeWords(Words(text))
}

// NormalizeWords is NormalizeTerms over an already-tokenized sentence — the
// path used when an upstream layer (the dependency parser, the annotation
// pipeline) has tokenized the text and the term sequence must be bit-exact
// with NormalizeTerms on the original string.
func NormalizeWords(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if IsStopword(w) || IsPunct(w) {
			continue
		}
		out = append(out, Stem(w))
	}
	return out
}
