package textproc

import (
	"strings"
	"unicode"
)

// Sentence is a segment of the source text with byte offsets.
type Sentence struct {
	Text  string
	Start int
	End   int
}

// abbreviations that end with a period but do not terminate a sentence.
var abbreviations = map[string]bool{
	"e.g": true, "i.e": true, "etc": true, "cf": true, "vs": true,
	"fig": true, "figs": true, "eq": true, "eqs": true, "sec": true,
	"dr": true, "mr": true, "mrs": true, "ms": true, "prof": true,
	"no": true, "vol": true, "pp": true, "ch": true, "al": true,
	"approx": true, "dept": true, "est": true, "inc": true, "corp": true,
	"u.s": true, "ph.d": true, "resp": true, "max": true, "min": true,
}

// SplitSentences segments text into sentences. It is abbreviation-aware,
// treats ".", "!", "?" as terminators, requires the following context to look
// like a sentence start (whitespace followed by an uppercase letter, digit,
// or opening quote/paren), and never splits inside decimal numbers, version
// strings or identifiers ("CUDA 7.5", "compute capability 3.x").
func SplitSentences(text string) []Sentence {
	var out []Sentence
	start := 0
	n := len(text)
	for i := 0; i < n; i++ {
		b := text[i]
		if b != '.' && b != '!' && b != '?' {
			if b == '\n' && i+1 < n && text[i+1] == '\n' {
				// blank line: hard paragraph boundary
				if s := trimSentence(text, start, i); s != nil {
					out = append(out, *s)
				}
				start = i + 1
			}
			continue
		}
		if b == '.' && !isSentenceFinalPeriod(text, i) {
			continue
		}
		// absorb trailing closers: ." .) .''
		end := i + 1
		for end < n && (text[end] == '"' || text[end] == '\'' || text[end] == ')' || text[end] == ']') {
			end++
		}
		if !looksLikeSentenceStart(text, end) {
			continue
		}
		if s := trimSentence(text, start, end); s != nil {
			out = append(out, *s)
		}
		start = end
		i = end - 1
	}
	if s := trimSentence(text, start, n); s != nil {
		out = append(out, *s)
	}
	return out
}

// SentenceStrings returns just the text of each sentence.
func SentenceStrings(text string) []string {
	ss := SplitSentences(text)
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Text
	}
	return out
}

func trimSentence(text string, start, end int) *Sentence {
	for start < end && unicode.IsSpace(rune(text[start])) {
		start++
	}
	for end > start && unicode.IsSpace(rune(text[end-1])) {
		end--
	}
	if start >= end {
		return nil
	}
	return &Sentence{Text: text[start:end], Start: start, End: end}
}

// isSentenceFinalPeriod decides whether the period at index i terminates a
// sentence rather than appearing inside a number, identifier or abbreviation.
func isSentenceFinalPeriod(text string, i int) bool {
	// inside a number or identifier: "3.14", "5.4.2", "knnjoin.cu"
	if i+1 < len(text) && isWordByte(text[i+1]) {
		return false
	}
	// word preceding the period, including inner dots ("e.g", "u.s")
	j := i
	for j > 0 && (isWordByte(text[j-1]) ||
		(text[j-1] == '.' && j >= 2 && isWordByte(text[j-2]))) {
		j--
	}
	word := strings.ToLower(text[j:i])
	if abbreviations[word] {
		return false
	}
	// single uppercase initial: "J. Smith"
	if len(word) == 1 && text[j] >= 'A' && text[j] <= 'Z' {
		return false
	}
	return true
}

// looksLikeSentenceStart reports whether the text at offset end (after a
// terminator) plausibly begins a new sentence.
func looksLikeSentenceStart(text string, end int) bool {
	if end >= len(text) {
		return true
	}
	if !unicode.IsSpace(rune(text[end])) {
		return false
	}
	k := end
	for k < len(text) && unicode.IsSpace(rune(text[k])) {
		k++
	}
	if k >= len(text) {
		return true
	}
	b := text[k]
	return (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9') ||
		b == '"' || b == '\'' || b == '(' || b == '[' || b >= 128
}
