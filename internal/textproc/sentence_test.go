package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitSentencesBasic(t *testing.T) {
	text := "Use shared memory. Avoid bank conflicts! Does it help? Yes."
	got := SentenceStrings(text)
	want := []string{
		"Use shared memory.",
		"Avoid bank conflicts!",
		"Does it help?",
		"Yes.",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d sentences %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sentence %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	text := "Profiling tools (e.g. NVProf) help identify issues. They do not fix them."
	got := SentenceStrings(text)
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %v", len(got), got)
	}
	if !strings.Contains(got[0], "NVProf") {
		t.Errorf("first sentence should contain the abbreviation context: %q", got[0])
	}
}

func TestSplitSentencesNumbersAndVersions(t *testing.T) {
	cases := []struct {
		text string
		n    int
	}{
		{"Devices of compute capability 3.x issue 8L instructions. This hides latency.", 2},
		{"The value is 3.14 in this case. It is rounded.", 2},
		{"See Section 5.4.2 for details. It covers control flow.", 2},
		{"CUDA 7.5 added new features.", 1},
	}
	for _, c := range cases {
		got := SentenceStrings(c.text)
		if len(got) != c.n {
			t.Errorf("SplitSentences(%q): got %d sentences %v, want %d", c.text, len(got), got, c.n)
		}
	}
}

func TestSplitSentencesNoSplitOnLowercaseContinuation(t *testing.T) {
	text := "This sentence mentions knnjoin.cu which is a file. It continues."
	got := SentenceStrings(text)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSplitSentencesParagraphBreak(t *testing.T) {
	text := "First paragraph without a terminator\n\nSecond paragraph here."
	got := SentenceStrings(text)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSplitSentencesClosingQuote(t *testing.T) {
	text := `He said "use registers." Then he left.`
	got := SentenceStrings(text)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
	if got := SplitSentences("   \n\t "); len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestSplitSentencesPaperExamples(t *testing.T) {
	// Sentences quoted in the Egeria paper must each survive segmentation
	// as a single sentence.
	paperSentences := []string{
		"This can be a good choice when the host does not read the memory object to avoid the host having to make a copy of the data to transfer.",
		"Thus, a developer may prefer using buffers instead of images if no sampling operation is needed.",
		"This synchronization guarantee can often be leveraged to avoid explicit clWaitForEvents() calls between command submissions.",
		"Pinning takes time, so avoid incurring pinning costs where CPU overhead must be avoided.",
		"For peak performance on all devices, developers can choose to use conditional compilation for key code loops in the kernel, or in some cases even provide two separate kernels.",
		"The first step in maximizing overall memory throughput for the application is to minimize data transfers with low bandwidth.",
	}
	joined := strings.Join(paperSentences, " ")
	got := SentenceStrings(joined)
	if len(got) != len(paperSentences) {
		t.Fatalf("got %d sentences, want %d: %v", len(got), len(paperSentences), got)
	}
	for i := range got {
		if got[i] != paperSentences[i] {
			t.Errorf("sentence %d:\n got  %q\n want %q", i, got[i], paperSentences[i])
		}
	}
}

// Property: offsets are within bounds, ordered and non-overlapping, and the
// text of each sentence matches its offsets.
func TestSplitSentencesOffsetInvariants(t *testing.T) {
	f := func(s string) bool {
		prevEnd := 0
		for _, sent := range SplitSentences(s) {
			if sent.Start < prevEnd || sent.End > len(s) || sent.Start >= sent.End {
				return false
			}
			if s[sent.Start:sent.End] != sent.Text {
				return false
			}
			prevEnd = sent.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: no sentence is empty or all-whitespace.
func TestSplitSentencesNonEmpty(t *testing.T) {
	f := func(s string) bool {
		for _, sent := range SplitSentences(s) {
			if strings.TrimSpace(sent.Text) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
