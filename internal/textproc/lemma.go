package textproc

import "strings"

// WordClass is the coarse part-of-speech class used to steer lemmatization.
type WordClass int

const (
	AnyClass WordClass = iota
	VerbClass
	NounClass
	AdjClass
)

// irregularVerbs maps inflected irregular verb forms to their lemma.
var irregularVerbs = map[string]string{
	"am": "be", "is": "be", "are": "be", "was": "be", "were": "be",
	"been": "be", "being": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	"goes": "go", "went": "go", "gone": "go", "going": "go",
	"gets": "get", "got": "get", "gotten": "get", "getting": "get",
	"makes": "make", "made": "make", "making": "make",
	"takes": "take", "took": "take", "taken": "take", "taking": "take",
	"gives": "give", "gave": "give", "given": "give", "giving": "give",
	"runs": "run", "ran": "run", "running": "run",
	"writes": "write", "wrote": "write", "written": "write", "writing": "write",
	"rewrites": "rewrite", "rewrote": "rewrite", "rewritten": "rewrite", "rewriting": "rewrite",
	"overwrites": "overwrite", "overwrote": "overwrite", "overwritten": "overwrite", "overwriting": "overwrite",
	"rebuilds": "rebuild", "rebuilt": "rebuild", "rebuilding": "rebuild",
	"rereads": "reread", "rereading": "reread",
	"reruns": "rerun", "reran": "rerun", "rerunning": "rerun",
	"reads": "read", "reading": "read",
	"finds": "find", "found": "find", "finding": "find",
	"keeps": "keep", "kept": "keep", "keeping": "keep",
	"leads": "lead", "led": "lead", "leading": "lead",
	"holds": "hold", "held": "hold", "holding": "hold",
	"puts": "put", "putting": "put",
	"sets": "set", "setting": "set",
	"lets": "let", "letting": "let",
	"chooses": "choose", "chose": "choose", "chosen": "choose", "choosing": "choose",
	"hides": "hide", "hid": "hide", "hidden": "hide", "hiding": "hide",
	"knows": "know", "knew": "know", "known": "know", "knowing": "know",
	"shows": "show", "showed": "show", "shown": "show", "showing": "show",
	"sees": "see", "saw": "see", "seen": "see", "seeing": "see",
	"means": "mean", "meant": "mean", "meaning": "mean",
	"comes": "come", "came": "come", "coming": "come",
	"becomes": "become", "became": "become", "becoming": "become",
	"begins": "begin", "began": "begin", "begun": "begin", "beginning": "begin",
	"brings": "bring", "brought": "bring", "bringing": "bring",
	"builds": "build", "built": "build", "building": "build",
	"buys": "buy", "bought": "buy", "buying": "buy",
	"costs": "cost", "costing": "cost",
	"cuts": "cut", "cutting": "cut",
	"says": "say", "said": "say", "saying": "say",
	"sends": "send", "sent": "send", "sending": "send",
	"spends": "spend", "spent": "spend", "spending": "spend",
	"splits": "split", "splitting": "split",
	"thinks": "think", "thought": "think", "thinking": "think",
	"loses": "lose", "lost": "lose", "losing": "lose",
	"rises": "rise", "rose": "rise", "risen": "rise", "rising": "rise",
	"falls": "fall", "fell": "fall", "fallen": "fall", "falling": "fall",
	"grows": "grow", "grew": "grow", "grown": "grow", "growing": "grow",
	"pays": "pay", "paid": "pay", "paying": "pay",
	"binds": "bind", "bound": "bind", "binding": "bind",
	"feeds": "feed", "fed": "feed", "feeding": "feed",
	"speeds": "speed", "sped": "speed", "speeding": "speed",
	"fits": "fit", "fitting": "fit",
}

// irregularNouns maps irregular plural forms to their singular lemma.
var irregularNouns = map[string]string{
	"children": "child", "men": "man", "women": "woman", "people": "person",
	"indices": "index", "indexes": "index",
	"vertices": "vertex", "vertexes": "vertex",
	"matrices": "matrix", "matrixes": "matrix",
	"caches": "cache", "branches": "branch", "switches": "switch",
	"accesses": "access", "classes": "class", "processes": "process",
	"buses": "bus", "busses": "bus", "analyses": "analysis",
	"syntheses": "synthesis", "hypotheses": "hypothesis", "axes": "axis",
	"criteria": "criterion", "phenomena": "phenomenon", "schemata": "schema",
	"data": "data", "media": "media", "hardware": "hardware",
	"software": "software", "series": "series",
	"halves": "half", "lives": "life", "leaves": "leaf",
	"feet": "foot", "copies": "copy", "bodies": "body",
	"libraries": "library", "registries": "registry", "entries": "entry",
	"queries": "query", "strategies": "strategy", "latencies": "latency",
	"dependencies": "dependency", "hierarchies": "hierarchy",
	"capabilities": "capability", "utilities": "utility",
	"priorities": "priority", "boundaries": "boundary",
	"capacities": "capacity", "penalties": "penalty",
	"efficiencies": "efficiency", "frequencies": "frequency",
	"memories": "memory", "geometries": "geometry", "properties": "property",
	"technologies": "technology", "quantities": "quantity",
	"activities": "activity", "facilities": "facility",
	"possibilities": "possibility", "opportunities": "opportunity",
}

// wordsEndingInS are base forms that end in "s" and must not be stripped.
var wordsEndingInS = map[string]bool{
	"always": true, "perhaps": true, "thus": true, "plus": true,
	"versus": true, "whereas": true, "across": true, "towards": true,
	"besides": true, "less": true, "unless": true, "its": true,
	"this": true, "is": true, "as": true, "us": true, "yes": true,
	"focus": true, "bus": true, "access": true, "process": true,
	"address": true, "class": true, "pass": true, "express": true,
	"suppress": true, "miss": true, "loss": true, "excess": true,
	"discuss": true, "harness": true, "possess": true, "compress": true,
	"status": true, "analysis": true, "basis": true, "synthesis": true,
	"axis": true, "cons": true, "pros": true, "various": true,
	"previous": true, "numerous": true, "continuous": true,
	"synchronous": true, "asynchronous": true, "simultaneous": true,
	"heterogeneous": true, "homogeneous": true, "obvious": true,
	"serious": true, "gauss": true, "atlas": true, "canvas": true,
	"regardless": true, "stress": true, "progress": true, "success": true,
}

// Lemma returns the canonical (dictionary) form of word for the given word
// class. It applies irregular-form tables first, then ordered suffix rules;
// candidates produced by rules are validated against the base-form lexicon
// when possible so that "using" -> "use" but "sing" stays "sing".
func Lemma(word string, class WordClass) string {
	w := strings.ToLower(word)
	if w == "" {
		return w
	}
	switch class {
	case VerbClass:
		return lemmaVerb(w)
	case NounClass:
		return lemmaNoun(w)
	case AdjClass:
		return lemmaAdj(w)
	default:
		if v, ok := irregularVerbs[w]; ok {
			return v
		}
		if n, ok := irregularNouns[w]; ok {
			return n
		}
		if lv := lemmaVerb(w); lv != w && KnownWord(lv) {
			return lv
		}
		if ln := lemmaNoun(w); ln != w && KnownWord(ln) {
			return ln
		}
		if lv := lemmaVerb(w); lv != w {
			return lv
		}
		return lemmaNoun(w)
	}
}

func lemmaVerb(w string) string {
	if v, ok := irregularVerbs[w]; ok {
		return v
	}
	if KnownWord(w) && !strings.HasSuffix(w, "ing") && !strings.HasSuffix(w, "ed") {
		// already a base form; -s handled below because "focus" etc. are known
		if !strings.HasSuffix(w, "s") || wordsEndingInS[w] {
			return w
		}
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		return restoreBase(w[:len(w)-3])
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		return restoreBase(w[:len(w)-2])
	case strings.HasSuffix(w, "es") && len(w) > 3:
		if KnownWord(w[:len(w)-1]) {
			// "maximizes" -> "maximize": the base itself ends in e
			return w[:len(w)-1]
		}
		stem := w[:len(w)-2]
		if hasSibilantEnd(stem) {
			return stem
		}
		if KnownWord(stem + "e") {
			return stem + "e"
		}
		if KnownWord(stem) {
			return stem
		}
		return stem + "e"
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !wordsEndingInS[w] && len(w) > 2:
		return w[:len(w)-1]
	}
	return w
}

// restoreBase recovers the base form after stripping -ed/-ing: undoubles a
// final doubled consonant ("controll" -> "control"), restores a dropped final
// "e" ("us" -> "use", "leverag" -> "leverage"), validating with the lexicon.
func restoreBase(stem string) string {
	if stem == "" {
		return stem
	}
	if KnownWord(stem) {
		return stem
	}
	n := len(stem)
	if n >= 2 && stem[n-1] == stem[n-2] && isConsonantByte(stem[n-1]) {
		undoubled := stem[:n-1]
		if KnownWord(undoubled) {
			return undoubled
		}
	}
	if KnownWord(stem + "e") {
		return stem + "e"
	}
	// heuristics with no lexicon support: prefer e-restoration after
	// typical e-dropping endings (single consonant after vowel pairs like
	// "leverag", "schedul"), undouble otherwise.
	if n >= 2 && stem[n-1] == stem[n-2] && isConsonantByte(stem[n-1]) {
		return stem[:n-1]
	}
	if endsInEDropping(stem) {
		return stem + "e"
	}
	return stem
}

func endsInEDropping(stem string) bool {
	for _, suf := range []string{"at", "iz", "ys", "as", "us", "ag", "ul", "ur", "id", "od", "ad", "iev", "eiv", "ov", "uc", "ac", "anc", "enc", "erg", "arg", "abl", "ibl", "ibrat", "in"} {
		if strings.HasSuffix(stem, suf) {
			return true
		}
	}
	return false
}

func lemmaNoun(w string) string {
	if n, ok := irregularNouns[w]; ok {
		return n
	}
	if wordsEndingInS[w] {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ches"), strings.HasSuffix(w, "shes"),
		strings.HasSuffix(w, "xes"), strings.HasSuffix(w, "zes"),
		strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "es") && len(w) > 3:
		stem := w[:len(w)-2]
		if KnownWord(stem + "e") {
			return stem + "e"
		}
		if KnownWord(stem) {
			return stem
		}
		return stem + "e"
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 2:
		return w[:len(w)-1]
	}
	return w
}

// irregularAdjectives maps irregular comparative/superlative forms to their
// base adjective.
var irregularAdjectives = map[string]string{
	"better": "good", "best": "good",
	"worse": "bad", "worst": "bad",
	"more": "much", "most": "much",
	"less": "little", "least": "little",
	"further": "far", "furthest": "far", "farther": "far", "farthest": "far",
}

func lemmaAdj(w string) string {
	if a, ok := irregularAdjectives[w]; ok {
		return a
	}
	switch {
	case strings.HasSuffix(w, "iest") && len(w) > 5:
		return w[:len(w)-4] + "y"
	case strings.HasSuffix(w, "ier") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "est") && len(w) > 4:
		return adjStem(w[:len(w)-3])
	case strings.HasSuffix(w, "er") && len(w) > 3:
		return adjStem(w[:len(w)-2])
	}
	return w
}

func adjStem(stem string) string {
	if KnownWord(stem) {
		return stem
	}
	if KnownWord(stem + "e") {
		return stem + "e"
	}
	n := len(stem)
	if n >= 2 && stem[n-1] == stem[n-2] && isConsonantByte(stem[n-1]) {
		return stem[:n-1]
	}
	return stem
}

func hasSibilantEnd(s string) bool {
	return strings.HasSuffix(s, "ch") || strings.HasSuffix(s, "sh") ||
		strings.HasSuffix(s, "ss") || strings.HasSuffix(s, "x") ||
		strings.HasSuffix(s, "z") || strings.HasSuffix(s, "o")
}

func isConsonantByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	}
	return b >= 'a' && b <= 'z'
}
