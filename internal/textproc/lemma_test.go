package textproc

import (
	"testing"
	"testing/quick"
)

func TestLemmaVerbsForSelectors(t *testing.T) {
	// Every inflection of the IMPERATIVE WORDS and KEY PREDICATES keyword
	// sets must lemmatize back to the base verb — the selectors depend on
	// this (Rule 3 and Rule 5 both check lemma(v)).
	cases := map[string]string{
		"uses": "use", "used": "use", "using": "use",
		"avoids": "avoid", "avoided": "avoid", "avoiding": "avoid",
		"creates": "create", "created": "create", "creating": "create",
		"makes": "make", "made": "make", "making": "make",
		"maps": "map", "mapped": "map", "mapping": "map",
		"aligns": "align", "aligned": "align", "aligning": "align",
		"adds": "add", "added": "add", "adding": "add",
		"changes": "change", "changed": "change", "changing": "change",
		"ensures": "ensure", "ensured": "ensure", "ensuring": "ensure",
		"calls": "call", "called": "call", "calling": "call",
		"unrolls": "unroll", "unrolled": "unroll", "unrolling": "unroll",
		"moves": "move", "moved": "move", "moving": "move",
		"selects": "select", "selected": "select", "selecting": "select",
		"schedules": "schedule", "scheduled": "schedule", "scheduling": "schedule",
		"switches": "switch", "switched": "switch", "switching": "switch",
		"transforms": "transform", "transformed": "transform", "transforming": "transform",
		"packs": "pack", "packed": "pack", "packing": "pack",
		"maximizes": "maximize", "maximized": "maximize", "maximizing": "maximize",
		"minimizes": "minimize", "minimized": "minimize", "minimizing": "minimize",
		"recommends": "recommend", "recommending": "recommend", "recommended": "recommend",
		"accomplishes": "accomplish", "accomplished": "accomplish", "accomplishing": "accomplish",
		"achieves": "achieve", "achieved": "achieve", "achieving": "achieve",
		"runs": "run", "ran": "run", "running": "run",
		"leveraged": "leverage", "leveraging": "leverage",
		"encouraged": "encourage", "encouraging": "encourage",
		"controlled": "control", "controlling": "control",
		"required": "require", "requiring": "require",
		"preferred": "prefer", "prefers": "prefer", "preferring": "prefer",
	}
	for in, want := range cases {
		if got := Lemma(in, VerbClass); got != want {
			t.Errorf("Lemma(%q, Verb) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaNounsForSelectors(t *testing.T) {
	// Plurals of KEY SUBJECTS must lemmatize to the singular (Rule 4).
	cases := map[string]string{
		"programmers":   "programmer",
		"developers":    "developer",
		"applications":  "application",
		"solutions":     "solution",
		"algorithms":    "algorithm",
		"optimizations": "optimization",
		"guidelines":    "guideline",
		"techniques":    "technique",
		"branches":      "branch",
		"accesses":      "access",
		"memories":      "memory",
		"latencies":     "latency",
		"matrices":      "matrix",
		"indices":       "index",
		"warps":         "warp",
		"caches":        "cache",
		"buses":         "bus",
	}
	for in, want := range cases {
		if got := Lemma(in, NounClass); got != want {
			t.Errorf("Lemma(%q, Noun) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaIrregularVerbs(t *testing.T) {
	cases := map[string]string{
		"is": "be", "are": "be", "was": "be", "were": "be", "been": "be",
		"has": "have", "had": "have",
		"chosen": "choose", "written": "write", "found": "find",
		"hidden": "hide", "built": "build", "kept": "keep",
	}
	for in, want := range cases {
		if got := Lemma(in, VerbClass); got != want {
			t.Errorf("Lemma(%q, Verb) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaBaseFormsUnchanged(t *testing.T) {
	for _, w := range []string{"use", "avoid", "thread", "memory", "process", "access", "always", "this", "focus"} {
		if got := Lemma(w, AnyClass); got != w {
			t.Errorf("Lemma(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestLemmaAdjectives(t *testing.T) {
	cases := map[string]string{
		"faster":  "fast",
		"fastest": "fast",
		"larger":  "large",
		"largest": "large",
		"bigger":  "big",
		"easier":  "easy",
		"easiest": "easy",
	}
	for in, want := range cases {
		if got := Lemma(in, AdjClass); got != want {
			t.Errorf("Lemma(%q, Adj) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaAnyClass(t *testing.T) {
	cases := map[string]string{
		"using":      "use",
		"threads":    "thread",
		"maximizing": "maximize",
		"developers": "developer",
		"ran":        "run",
		"indices":    "index",
	}
	for in, want := range cases {
		if got := Lemma(in, AnyClass); got != want {
			t.Errorf("Lemma(%q, Any) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaCaseInsensitive(t *testing.T) {
	if got := Lemma("Using", VerbClass); got != "use" {
		t.Errorf("Lemma(Using) = %q, want use", got)
	}
}

func TestLemmaEmptyAndShort(t *testing.T) {
	if got := Lemma("", AnyClass); got != "" {
		t.Errorf("Lemma(\"\") = %q", got)
	}
	if got := Lemma("a", AnyClass); got != "a" {
		t.Errorf("Lemma(a) = %q", got)
	}
}

// Property: lemmatization is idempotent — Lemma(Lemma(w)) == Lemma(w) for
// words drawn from the lexicon's inflection space.
func TestLemmaIdempotent(t *testing.T) {
	f := func(raw string) bool {
		w := make([]byte, 0, 16)
		for i := 0; i < len(raw) && len(w) < 16; i++ {
			b := raw[i] | 0x20
			if b >= 'a' && b <= 'z' {
				w = append(w, b)
			}
		}
		word := string(w)
		l1 := Lemma(word, VerbClass)
		l2 := Lemma(l1, VerbClass)
		// allow a single further reduction only if the first pass produced
		// a form that is itself inflected-looking; full idempotence must
		// hold for lexicon words.
		if KnownWord(word) && l1 != Lemma(l1, VerbClass) {
			return false
		}
		_ = l2
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKnownWord(t *testing.T) {
	for _, w := range []string{"use", "memory", "thread", "optimize", "kernel", "warp"} {
		if !KnownWord(w) {
			t.Errorf("KnownWord(%q) = false", w)
		}
	}
	for _, w := range []string{"zzzz", "qqq", ""} {
		if KnownWord(w) {
			t.Errorf("KnownWord(%q) = true", w)
		}
	}
	if LexiconSize() < 500 {
		t.Errorf("lexicon unexpectedly small: %d", LexiconSize())
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "The", "is", "of", "and", "to"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"memory", "kernel", "optimize"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func TestRemoveStopwords(t *testing.T) {
	in := []string{"the", "kernel", "is", "slow", ",", "and", "divergent"}
	got := RemoveStopwords(in)
	want := []string{"kernel", "slow", "divergent"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNormalizeTerms(t *testing.T) {
	got := NormalizeTerms("Maximize the memory throughput of the application.")
	want := []string{"maxim", "memori", "throughput", "applic"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, got[i], want[i])
		}
	}
}
