package textproc

import "strings"

// baseLexiconRaw is a curated list of English base forms (verbs, nouns,
// adjectives) biased toward the register of HPC programming guides. It is
// used to validate candidate lemmas produced by the suffix rules: a candidate
// that appears here is accepted immediately, which is what makes "using"
// lemmatize to "use" (use is listed) while "sing" stays "sing" (no rule
// fires). It is intentionally a validation set, not a closed vocabulary —
// unknown words flow through the rule heuristics unharmed.
const baseLexiconRaw = `
able accelerate accelerator accept access accomplish account achieve act
action active adapt add address adjust adopt advance advantage advise
advisor affect aggregate algorithm align alignment alias allocate
allocation allow alternate alternative amount analyze answer appear apply
application approach appropriate architecture argue argument arithmetic
arrange array arrive aspect assemble assembly assign associate assume
atomic attach attain attempt attribute avoid await bad balance band
bandwidth bank barrier base basic batch become begin behavior benchmark
benefit best better bind bit block board body boost bottleneck bound
boundary branch break bridge brief bring buffer build bus byte cache
calculate call capability capacity capture care carry case cast cause
cell chain chance change channel chapter characteristic check chip choice
choose chunk circumvent cite claim class clause clean clear clock close
cluster coalesce code collect collection combine command comment commit
common communicate compare comparison compile compiler complete complex
complexity component compose compute computation concept concurrent
condition conditional configure configuration conflict connect consider
consist constant constraint construct consume contain content context
contiguous continue contribute control convert cooperate coordinate copy
core correct correspond cost count counter couple course cover create
critical cross crucial current cycle data deal debug decide decision
declare decompose decrease dedicate default defer define degree delay
delete demand demonstrate denote depend dependence dependency depth
describe design desirable detail detect determine develop developer
device devote differ difference different difficult dimension direct
direction directive disable discard discuss dispatch distinct distribute
diverge divergence divergent divide document domain dominate double
download dram drive driver drop dual due dump duplicate duration dynamic
each ease easy edge effect effective efficiency efficient effort element
eliminate embed emit employ empty emulate enable encounter encourage end
engine enhance enqueue ensure enter entire entry environment equal
equation equip error essential establish estimate evaluate even event
evict evolve examine example exceed except excess exchange exclusive
execute execution exercise exhibit exist expand expect expense expensive
experience experiment expert explain explicit exploit explore export
expose express extend extension extent external extra extract fact factor
fail failure fall false fast fault feature feed fetch fewer field figure
file fill filter final find fine finish first fit fix flag flexible float
flow flush focus fold follow footprint force form format formula forward
fraction fragment frame framework free frequency frequent full fully
function further fuse fusion gain gap gather general generate generation
gigabyte give global good grain granularity graph graphic great grid
group grow guarantee guard guide guideline half halt handle happen hard
hardware harness hash have hazard head heavy help hide hierarchy high
hint hit hold host hybrid idea ideal identical identify identity idle
ignore illustrate image imbalance impact imperative implement implication
implicit imply import important improve improvement include incorporate
increase increment incur independent index indicate indirect individual
inefficient infer influence inform information inherent initial
initialize inline inner input insert inspect install instance instead
instruction instrument integer integrate intend intense intensity
intensive interact interest interface interleave intermediate internal
interpret interrupt intrinsic introduce invalidate invoke involve issue
item iterate iteration join keep kernel key keyword kind know label lane
language large last latency launch layer layout lead leak learn leave
less level leverage library lie lifetime light like likely limit limiter
line linear link list little live load local locality locate location
lock logic logical long look loop low lower machine main maintain major
make manage management manner manual map mask master match matrix matter
maximal maximize maximum measure mechanism media memory mention merge
mesh message method metric microprocessor migrate minimal minimize
minimum minor miss mitigate mix mode model modern modify module moment
monitor more most move much multiple multiprocessor multiply must name
narrow native nature near necessary need negative nest network new next
node normal normalize notable note notice number object observe obtain
occupancy occupy occur offer offload offset often old opencl operand
operate operation opportunity optimal optimization optimize option
optional order organize orient origin original other outer outline
output outstanding overall overcome overhead overlap overload override
own pack package pad page pair parallel parallelism parameter
parameterize part partial particular partition pass passive path pattern
peak penalty pend per percent perform performance period permit phase
phenomenon pick piece pin pinpoint pipeline pitch place plan platform
point pointer policy pool poor popular populate port portion position
possess possible post potential power practice pragma precede precision
predicate predict prefer prefetch prepare presence present preserve
pressure prevent previous primary principle print prior priority private
problem procedure proceed process processor produce product profile
profiler program programmer progress project promote prompt proper
property propose protect prove provide purpose push put quantity query
question queue quick range rank rate rather ratio raw reach read ready
real realize rearrange reason receive recent recognize recommend
recompute reconsider record recover rectify reduce reduction redundant
refactor refer reference refine region register regular relate relation
relative release relevant reliable rely remain remark remember remind
remove render reorder repeat replace replicate report represent request
require requirement research reserve reside resident resolve resource
respect respond response rest restrict result resume retain rethink
retire retrieve return reuse reveal review revise revolve rewrite right
root round routine row rule run runtime same sample satisfy save scale
scan scatter schedule scheduler scheme scope second section see seek
segment select selection selector semantic send sense separate sequence
sequential serial serialize serve server service set setting setup
several shape share shift short show side sign signal significant
similar simple simplify simulate simultaneous single site situation size
skip slow small smooth software solution solve some sort source space
span spawn special specific specification specify speed spend spill
split spot spread stack stage stall standard start state statement
static statistic stay stem step storage store strategy stream strength
stress stride string strip strong structure student study style
subdivide subject submit subsection subsequent subset substantial
substitute suffer sufficient suggest suit suitable sum summarize
summary supply support suppose surface survey suspend sustain swap
switch synchronize synchronization synthesize system table tag tail take
talk target task technique technology tell temporary tend term test
texture thrash thread three threshold throughput throw tie tile time tip
together token tolerate tool top topic total trace track trade tradeoff
traffic transaction transfer transform transition translate transpose
traverse treat trigger trip true try tune tuning turn twice type typical
under underlie understand unified uniform unit unite unroll update
upload upper usage use useful user utilize utilization validate value
variable variant variation vary vector vendor verify version view
virtual visible visit volume wait want warp waste watch wave way weak
weight well wide width will window wise word work workload wrap write
yield zero zone
`

var baseLexicon = buildLexicon(baseLexiconRaw)

func buildLexicon(raw string) map[string]bool {
	m := make(map[string]bool, 1200)
	for _, w := range strings.Fields(raw) {
		m[w] = true
	}
	return m
}

// KnownWord reports whether w (lowercase) is a known English base form in
// the built-in lexicon.
func KnownWord(w string) bool {
	return baseLexicon[w]
}

// LexiconSize returns the number of base forms in the built-in lexicon.
func LexiconSize() int { return len(baseLexicon) }
