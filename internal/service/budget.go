package service

import (
	"context"
	"time"
)

// Deadline-budget propagation: a request-scoped time budget is split fairly
// across the sub-queries a request fans out into, instead of every
// sub-query racing the parent deadline. Without the split, item 1 of a
// 64-item batch and item 64 see the same deadline — the early items can
// consume the whole budget and leave the tail guaranteed timeouts; with it,
// each scheduling wave of the worker pool gets an equal slice, so a fixed
// per-item share survives even when earlier items run long.

// minShare is the floor on any budget share: a leg is never handed a
// sub-millisecond deadline, which would be indistinguishable from failure.
const minShare = time.Millisecond

// batchShare returns the per-item time budget for a pool of workers
// answering items sequentially in waves: remaining / ceil(items/workers).
// Shares are floored at minShare; a non-positive remaining (deadline
// already expired) returns the floor and lets the context layer fail the
// call cleanly.
func batchShare(remaining time.Duration, items, workers int) time.Duration {
	if items <= 0 {
		// still floor at minShare: an expired deadline makes remaining
		// negative, and a negative timeout must never leak into WithTimeout
		if remaining < minShare {
			return minShare
		}
		return remaining
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > items {
		workers = items
	}
	waves := (items + workers - 1) / workers
	share := remaining / time.Duration(waves)
	if share < minShare {
		return minShare
	}
	return share
}

// askShare returns the per-leg time budget for a fully concurrent
// federation fan-out: the remaining budget minus a 10% merge reserve, so
// the merge and response encoding still happen inside the request deadline
// even when every leg runs to its limit. Floored at minShare.
func askShare(remaining time.Duration) time.Duration {
	share := remaining - remaining/10
	if share < minShare {
		return minShare
	}
	return share
}

// remainingBudget returns the time left until the context deadline, or fall
// when the context carries none.
func remainingBudget(ctx context.Context, fall time.Duration) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl)
	}
	return fall
}
