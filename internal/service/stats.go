package service

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// latencyRingSize is how many recent request latencies each ring retains for
// percentile estimation. A power of two keeps the modulo cheap.
const latencyRingSize = 1024

// latencyRing is a fixed-size ring of recent latencies. Percentiles are
// computed over whatever the ring currently holds — an estimate over the
// last latencyRingSize requests, which is exactly what an operations
// dashboard wants from /statsz. The obs histograms complement it: they
// cover every request since process start, at bucket resolution.
type latencyRing struct {
	mu     sync.Mutex
	buf    [latencyRingSize]time.Duration
	next   int
	filled int
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyRingSize
	if r.filled < latencyRingSize {
		r.filled++
	}
	r.mu.Unlock()
}

// percentiles returns the p-quantiles (0 <= p <= 1) of the ring's contents
// by the nearest-rank method (ceil(p*n), 1-indexed), zero when empty.
// Truncating instead of rounding the rank reads the wrong sample for high
// quantiles — int(0.99*(1024-1)) lands on index 1012 where nearest-rank
// p99 over 1024 samples is index 1013.
func (r *latencyRing) percentiles(ps ...float64) []time.Duration {
	r.mu.Lock()
	snap := make([]time.Duration, r.filled)
	copy(snap, r.buf[:r.filled])
	r.mu.Unlock()
	out := make([]time.Duration, len(ps))
	if len(snap) == 0 {
		return out
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	for i, p := range ps {
		idx := int(math.Ceil(p*float64(len(snap)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(snap) {
			idx = len(snap) - 1
		}
		out[i] = snap[idx]
	}
	return out
}

// Stats aggregates the service's operational counters. The counters and
// histograms live in an obs.Registry, so /metricz exposes exactly the
// values /statsz reports — the two views reconcile by construction. All
// fields are safe for concurrent use; snapshot produces the /statsz view.
type Stats struct {
	requests  *obs.Counter // requests entering any /v1 handler
	hits      *obs.Counter // cache hits (incl. single-flight shared results)
	misses    *obs.Counter // cache misses that ran retrieval
	evictions *obs.Counter // LRU evictions
	rejected  *obs.Counter // 429s from admission control
	timeouts  *obs.Counter // requests cancelled by the per-request deadline
	errors5xx *obs.Counter // responses with status >= 500
	inFlight  *obs.Gauge   // requests currently inside a /v1 handler

	batches    *obs.Counter // /v1/batch requests answered
	batchItems *obs.Counter // queries answered inside batches
	asks       *obs.Counter // /v1/ask federated queries answered

	queryRing  latencyRing // latency of /v1/{advisor}/query (last 1024)
	reportRing latencyRing // latency of /v1/{advisor}/report (last 1024)
	batchRing  latencyRing // latency of /v1/batch (last 1024)
	askRing    latencyRing // latency of /v1/ask (last 1024)

	queryHist  *obs.Histogram // latency of every query since process start
	reportHist *obs.Histogram // latency of every report since process start
	batchHist  *obs.Histogram // latency of every batch since process start
	askHist    *obs.Histogram // latency of every federated ask since start
}

// newStats wires a Stats into reg under the service_* metric names.
// Creating two services over the same registry makes them share counters;
// give each its own registry when separate accounting matters.
func newStats(reg *obs.Registry) *Stats {
	return &Stats{
		requests:   reg.Counter("service_requests_total"),
		hits:       reg.Counter("service_cache_hits_total"),
		misses:     reg.Counter("service_cache_misses_total"),
		evictions:  reg.Counter("service_cache_evictions_total"),
		rejected:   reg.Counter("service_rejected_total"),
		timeouts:   reg.Counter("service_timeouts_total"),
		errors5xx:  reg.Counter("service_errors_5xx_total"),
		inFlight:   reg.Gauge("service_in_flight"),
		batches:    reg.Counter("service_batches_total"),
		batchItems: reg.Counter("service_batch_items_total"),
		asks:       reg.Counter("service_asks_total"),
		queryHist:  reg.Histogram("service_query_latency_micros"),
		reportHist: reg.Histogram("service_report_latency_micros"),
		batchHist:  reg.Histogram("service_batch_latency_micros"),
		askHist:    reg.Histogram("service_ask_latency_micros"),
	}
}

// recordQuery records one /v1/{advisor}/query latency in both views.
func (s *Stats) recordQuery(d time.Duration) {
	s.queryRing.record(d)
	s.queryHist.ObserveDuration(d)
}

// recordReport records one /v1/{advisor}/report latency in both views.
func (s *Stats) recordReport(d time.Duration) {
	s.reportRing.record(d)
	s.reportHist.ObserveDuration(d)
}

// recordBatch records one /v1/batch latency and its item count.
func (s *Stats) recordBatch(d time.Duration, items int) {
	s.batches.Add(1)
	s.batchItems.Add(int64(items))
	s.batchRing.record(d)
	s.batchHist.ObserveDuration(d)
}

// recordAsk records one /v1/ask federated-query latency.
func (s *Stats) recordAsk(d time.Duration) {
	s.asks.Add(1)
	s.askRing.record(d)
	s.askHist.ObserveDuration(d)
}

// StatsSnapshot is the JSON shape served on /statsz.
type StatsSnapshot struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Evictions   int64 `json:"evictions"`
	Rejected    int64 `json:"rejected"`
	Timeouts    int64 `json:"timeouts"`
	Errors5xx   int64 `json:"errors_5xx"`
	InFlight    int64 `json:"in_flight"`
	CacheSize   int   `json:"cache_size"`
	Advisors    int   `json:"advisors"`
	Batches     int64 `json:"batches"`
	BatchItems  int64 `json:"batch_items"`
	Asks        int64 `json:"asks"`

	// Lifecycle is present when a corpus lifecycle manager is attached
	// (serve -snapshot-dir / -watch): warm-start origin, reload counters,
	// and last-error per advisor.
	Lifecycle *lifecycle.State `json:"lifecycle,omitempty"`

	// Breakers lists each advisor's circuit-breaker state (closed, open,
	// half-open), sorted by advisor name; empty until an advisor has
	// answered at least one query.
	Breakers []BreakerInfo `json:"breakers,omitempty"`

	QueryP50Micros  int64 `json:"query_p50_micros"`
	QueryP99Micros  int64 `json:"query_p99_micros"`
	ReportP50Micros int64 `json:"report_p50_micros"`
	ReportP99Micros int64 `json:"report_p99_micros"`
	BatchP50Micros  int64 `json:"batch_p50_micros"`
	BatchP99Micros  int64 `json:"batch_p99_micros"`
	AskP50Micros    int64 `json:"ask_p50_micros"`
	AskP99Micros    int64 `json:"ask_p99_micros"`
}

func (s *Stats) snapshot() StatsSnapshot {
	qp := s.queryRing.percentiles(0.50, 0.99)
	rp := s.reportRing.percentiles(0.50, 0.99)
	bp := s.batchRing.percentiles(0.50, 0.99)
	ap := s.askRing.percentiles(0.50, 0.99)
	return StatsSnapshot{
		Requests:        s.requests.Value(),
		CacheHits:       s.hits.Value(),
		CacheMisses:     s.misses.Value(),
		Evictions:       s.evictions.Value(),
		Rejected:        s.rejected.Value(),
		Timeouts:        s.timeouts.Value(),
		Errors5xx:       s.errors5xx.Value(),
		InFlight:        s.inFlight.Value(),
		Batches:         s.batches.Value(),
		BatchItems:      s.batchItems.Value(),
		Asks:            s.asks.Value(),
		QueryP50Micros:  qp[0].Microseconds(),
		QueryP99Micros:  qp[1].Microseconds(),
		ReportP50Micros: rp[0].Microseconds(),
		ReportP99Micros: rp[1].Microseconds(),
		BatchP50Micros:  bp[0].Microseconds(),
		BatchP99Micros:  bp[1].Microseconds(),
		AskP50Micros:    ap[0].Microseconds(),
		AskP99Micros:    ap[1].Microseconds(),
	}
}
