package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyRingSize is how many recent request latencies each ring retains for
// percentile estimation. A power of two keeps the modulo cheap.
const latencyRingSize = 1024

// latencyRing is a fixed-size ring of recent latencies. Percentiles are
// computed over whatever the ring currently holds — an estimate over the
// last latencyRingSize requests, which is exactly what an operations
// dashboard wants from /statsz.
type latencyRing struct {
	mu     sync.Mutex
	buf    [latencyRingSize]time.Duration
	next   int
	filled int
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyRingSize
	if r.filled < latencyRingSize {
		r.filled++
	}
	r.mu.Unlock()
}

// percentiles returns the p-quantiles (0 <= p <= 1) of the ring's contents,
// zero when empty.
func (r *latencyRing) percentiles(ps ...float64) []time.Duration {
	r.mu.Lock()
	snap := make([]time.Duration, r.filled)
	copy(snap, r.buf[:r.filled])
	r.mu.Unlock()
	out := make([]time.Duration, len(ps))
	if len(snap) == 0 {
		return out
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	for i, p := range ps {
		idx := int(p * float64(len(snap)-1))
		out[i] = snap[idx]
	}
	return out
}

// Stats aggregates the service's operational counters. All fields are safe
// for concurrent use; Snapshot produces the /statsz view.
type Stats struct {
	requests   atomic.Int64 // requests entering any /v1 handler
	hits       atomic.Int64 // cache hits (incl. single-flight shared results)
	misses     atomic.Int64 // cache misses that ran retrieval
	evictions  atomic.Int64 // LRU evictions
	rejected   atomic.Int64 // 429s from admission control
	timeouts   atomic.Int64 // requests cancelled by the per-request deadline
	errors5xx  atomic.Int64 // responses with status >= 500
	inFlight   atomic.Int64 // requests currently inside a /v1 handler
	queryRing  latencyRing  // latency of /v1/{advisor}/query
	reportRing latencyRing  // latency of /v1/{advisor}/report
}

// StatsSnapshot is the JSON shape served on /statsz.
type StatsSnapshot struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Evictions   int64 `json:"evictions"`
	Rejected    int64 `json:"rejected"`
	Timeouts    int64 `json:"timeouts"`
	Errors5xx   int64 `json:"errors_5xx"`
	InFlight    int64 `json:"in_flight"`
	CacheSize   int   `json:"cache_size"`
	Advisors    int   `json:"advisors"`

	QueryP50Micros  int64 `json:"query_p50_micros"`
	QueryP99Micros  int64 `json:"query_p99_micros"`
	ReportP50Micros int64 `json:"report_p50_micros"`
	ReportP99Micros int64 `json:"report_p99_micros"`
}

func (s *Stats) snapshot() StatsSnapshot {
	qp := s.queryRing.percentiles(0.50, 0.99)
	rp := s.reportRing.percentiles(0.50, 0.99)
	return StatsSnapshot{
		Requests:        s.requests.Load(),
		CacheHits:       s.hits.Load(),
		CacheMisses:     s.misses.Load(),
		Evictions:       s.evictions.Load(),
		Rejected:        s.rejected.Load(),
		Timeouts:        s.timeouts.Load(),
		Errors5xx:       s.errors5xx.Load(),
		InFlight:        s.inFlight.Load(),
		QueryP50Micros:  qp[0].Microseconds(),
		QueryP99Micros:  qp[1].Microseconds(),
		ReportP50Micros: rp[0].Microseconds(),
		ReportP99Micros: rp[1].Microseconds(),
	}
}
