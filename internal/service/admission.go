package service

import (
	"context"
	"errors"
)

// Admission errors.
var (
	// ErrOverloaded: both the worker pool and the waiting queue are full —
	// the caller should answer 429.
	ErrOverloaded = errors.New("service: overloaded")
)

// Admission bounds how much retrieval work runs at once: at most maxInFlight
// requests execute, at most maxQueue more wait for a slot, and everything
// beyond that is rejected immediately so overload sheds load instead of
// accumulating latency. Waiting respects the request context, so a
// per-request timeout also bounds time spent queued.
type Admission struct {
	sem   chan struct{} // worker slots
	queue chan struct{} // waiting-room slots
	stats *Stats
}

// NewAdmission creates an admission controller with maxInFlight worker slots
// and maxQueue waiting slots (both floored at 1 worker / 0 waiters).
func NewAdmission(maxInFlight, maxQueue int, stats *Stats) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		sem:   make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
		stats: stats,
	}
}

// Acquire obtains a worker slot, waiting in the bounded queue if necessary.
// It returns ErrOverloaded when the queue is full and the context's error
// when the deadline expires while queued. On success the caller must
// Release.
func (a *Admission) Acquire(ctx context.Context) error {
	// fast path: a free worker slot
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	// enter the bounded waiting room or shed
	select {
	case a.queue <- struct{}{}:
	default:
		a.stats.rejected.Add(1)
		return ErrOverloaded
	}
	defer func() { <-a.queue }()
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a worker slot obtained by Acquire.
func (a *Admission) Release() { <-a.sem }

// InFlight returns how many worker slots are currently held.
func (a *Admission) InFlight() int { return len(a.sem) }

// Queued returns how many requests are waiting for a slot.
func (a *Admission) Queued() int { return len(a.queue) }
