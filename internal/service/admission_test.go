package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestAdmissionAcquireRelease(t *testing.T) {
	a := NewAdmission(2, 0, newStats(obs.NewRegistry()))
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Errorf("in-flight %d, want 2", got)
	}
	// pool full, queue empty -> immediate rejection
	if err := a.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	a.Release()
	if err := a.Acquire(ctx); err != nil {
		t.Fatalf("slot freed but acquire failed: %v", err)
	}
	a.Release()
	a.Release()
	if got := a.InFlight(); got != 0 {
		t.Errorf("in-flight %d after releases, want 0", got)
	}
}

func TestAdmissionQueueWaitsThenAcquires(t *testing.T) {
	stats := newStats(obs.NewRegistry())
	a := NewAdmission(1, 1, stats)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- a.Acquire(ctx) }()
	// the goroutine is queued; give it a moment, then free the slot
	for i := 0; a.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.Queued() != 1 {
		t.Fatal("waiter never queued")
	}
	a.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued waiter should acquire after release: %v", err)
	}
	a.Release()
}

func TestAdmissionQueueOverflowRejects(t *testing.T) {
	stats := newStats(obs.NewRegistry())
	a := NewAdmission(1, 1, stats)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	blocked := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(blocked)
		a.Acquire(ctx) // occupies the single queue slot
		a.Release()
	}()
	<-blocked
	for i := 0; a.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// pool full AND queue full -> overload
	if err := a.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded with full queue, got %v", err)
	}
	if stats.rejected.Value() == 0 {
		t.Error("rejection not counted")
	}
	a.Release() // lets the queued goroutine through
	wg.Wait()
}

func TestAdmissionContextExpiresInQueue(t *testing.T) {
	a := NewAdmission(1, 4, newStats(obs.NewRegistry()))
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := a.Acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded while queued, got %v", err)
	}
	if a.Queued() != 0 {
		t.Errorf("queue slot leaked: %d", a.Queued())
	}
}
