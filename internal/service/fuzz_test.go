package service

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/vsm"
)

// FuzzQuery hammers the /v1 query handler with arbitrary query strings
// through the full stack — routing, tracing, admission, query annotation,
// cache keying, retrieval. Seeds live in testdata/fuzz/FuzzQuery (the
// paper's Table 6 queries; regenerate with `go run ./tools/fuzzseed`) plus
// the edge cases below. Invariants: never a 5xx, never a panic, and every
// 200 body is a well-formed QueryResponse whose count matches its answers.
func FuzzQuery(f *testing.F) {
	f.Add("")
	f.Add(" ")
	f.Add("how to reduce global memory latency")
	f.Add("?q=injection&x=1#frag")
	f.Add("<script>alert(1)</script>")
	f.Add("\x00\x01\x02 control bytes")
	f.Add("\xff\xfe invalid utf8")
	f.Add("словами на другом языке 漢字")

	reg := NewRegistry()
	reg.Add("cuda", e2eAdvisor(f))
	svc := New(reg, Options{Timeout: 10 * time.Second})

	f.Fuzz(func(t *testing.T, q string) {
		req := httptest.NewRequest("GET", "/v1/cuda/query?q="+url.QueryEscape(q), nil)
		rec := httptest.NewRecorder()
		svc.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("query %q: status %d body %s", q, rec.Code, rec.Body.String())
		}
		if rec.Code == 200 {
			var resp QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("query %q: 200 body is not a QueryResponse: %v", q, err)
			}
			if resp.Count != len(resp.Answers) {
				t.Fatalf("query %q: count %d but %d answers", q, resp.Count, len(resp.Answers))
			}
			for _, a := range resp.Answers {
				if a.Score < vsm.DefaultThreshold {
					t.Fatalf("query %q: answer below threshold: %v", q, a.Score)
				}
			}
		}
	})
}
