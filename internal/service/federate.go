package service

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vsm"
)

// GET|POST /v1/ask federates one question across every registered advisor:
// the query fans out concurrently, each advisor contributes its top-k
// answers, and the merged list is ranked by per-advisor normalized score.
// Raw scores are comparable only within one advisor's index (different
// vocabularies, different IDF tables — and under BM25, different scales),
// so the merge ranks by Norm = score / advisor's best score: each advisor's
// best answer scores 1.0, and normalization is strictly monotone per
// advisor, so an advisor's answers keep their relative order in the merge.

// DefaultFederationK is how many answers each advisor contributes to a
// federated ask when the client does not say (?k=).
const DefaultFederationK = 3

// FederatedAnswer is one advisor's answer inside a federated result.
type FederatedAnswer struct {
	Advisor string  `json:"advisor"`
	Rule    Rule    `json:"rule"`
	Score   float64 `json:"score"` // raw backend score, advisor-local scale
	Norm    float64 `json:"norm"`  // score / advisor's best score for this ask
}

// AskResponse is the body of GET|POST /v1/ask. Errors maps advisor name to
// failure for advisors that could not answer (overload, timeout); advisors
// with no matching answers are simply absent.
type AskResponse struct {
	Query   string            `json:"query"`
	Backend string            `json:"backend,omitempty"`
	K       int               `json:"k"`
	Count   int               `json:"count"`
	Answers []FederatedAnswer `json:"answers"`
	Errors  map[string]string `json:"errors,omitempty"`
	TraceID string            `json:"trace_id,omitempty"`
}

// Ask fans q out to every registered advisor concurrently through the
// cached query path, keeps each advisor's k best answers, and merges them
// into one list ranked by normalized score (ties: advisor name, then rule
// index — deterministic for identical registries). Per-advisor failures
// land in the errors map; an ask only fails entirely when no advisor is
// registered (empty results, empty errors).
func (s *Service) Ask(ctx context.Context, backend, q string, k int) ([]FederatedAnswer, map[string]string) {
	start := time.Now()
	defer func() { s.stats.recordAsk(time.Since(start)) }()
	if k <= 0 {
		k = DefaultFederationK
	}
	parent := obs.SpanFrom(ctx)
	names := s.reg.Names()
	perAdvisor := make([][]FederatedAnswer, len(names))
	errTexts := make([]string, len(names))
	// every leg runs concurrently, so each gets the same share: the
	// remaining request budget minus a merge reserve (see askShare). The
	// leg's own WithTimeout can only shrink the parent deadline, never
	// extend it.
	share := askShare(remainingBudget(ctx, s.opts.Timeout))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			span := parent.StartChild("ask." + name)
			defer span.Finish()
			// an open breaker skips the advisor outright: the leg reports
			// ErrBreakerOpen in the errors map instead of burning its
			// budget timing out against a failing advisor
			br := s.breakers.get(name)
			if !br.Allow() {
				bspan := span.StartChild("breaker")
				bspan.SetAttr("state", br.State().String())
				bspan.Finish()
				span.SetAttr("outcome", "breaker-open")
				errTexts[i] = ErrBreakerOpen.Error()
				return
			}
			lctx, cancel := context.WithTimeout(ctx, share)
			defer cancel()
			answers, hit, err := s.CachedQueryBackend(lctx, name, backend, q)
			if err != nil {
				span.SetAttr("outcome", "error")
				errTexts[i] = err.Error()
				return
			}
			span.SetAttr("cache", map[bool]string{true: "hit", false: "miss"}[hit])
			span.SetAttrInt("answers", len(answers))
			if len(answers) == 0 {
				return
			}
			if len(answers) > k {
				answers = answers[:k] // already ranked best-first
			}
			best := answers[0].Score // core answers are sorted, best first
			out := make([]FederatedAnswer, len(answers))
			for j, a := range answers {
				norm := 0.0
				if best > 0 {
					norm = a.Score / best
				}
				out[j] = FederatedAnswer{
					Advisor: name,
					Rule:    toRule(a.Sentence),
					Score:   a.Score,
					Norm:    norm,
				}
			}
			perAdvisor[i] = out
		}(i, name)
	}
	wg.Wait()
	var merged []FederatedAnswer
	errs := map[string]string{}
	for i, name := range names {
		merged = append(merged, perAdvisor[i]...)
		if errTexts[i] != "" {
			errs[name] = errTexts[i]
		}
	}
	// stable sort: equal Norm keeps the advisor-name order built above, and
	// the explicit tiebreakers make the merged ranking deterministic
	sort.SliceStable(merged, func(a, b int) bool {
		x, y := merged[a], merged[b]
		if x.Norm != y.Norm {
			return x.Norm > y.Norm
		}
		if x.Advisor != y.Advisor {
			return x.Advisor < y.Advisor
		}
		return x.Rule.Index < y.Rule.Index
	})
	if len(errs) == 0 {
		errs = nil
	}
	return merged, errs
}

// handleAsk serves GET and POST /v1/ask (q, optional backend and k — query
// parameters on GET, form or query parameters on POST).
func (s *Service) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		_ = r.ParseForm() // merges POST form body with URL query params
	}
	q := strings.TrimSpace(r.FormValue("q"))
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	backend := strings.TrimSpace(r.FormValue("backend"))
	if !vsm.ValidBackend(backend) {
		writeError(w, http.StatusBadRequest, "%v: %q", vsm.ErrUnknownBackend, backend)
		return
	}
	k := DefaultFederationK
	if kq := strings.TrimSpace(r.FormValue("k")); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "parameter k must be a positive integer")
			return
		}
		k = n
	}
	// establish the request-wide budget here so the per-leg shares inside
	// Ask are computed against a real deadline
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	answers, errs := s.Ask(ctx, backend, q, k)
	writeJSON(w, http.StatusOK, AskResponse{
		Query:   q,
		Backend: backend,
		K:       k,
		Count:   len(answers),
		Answers: answers,
		Errors:  errs,
		TraceID: obs.TraceID(r.Context()),
	})
}
