package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/vsm"
)

// POST /v1/batch answers many queries in one request. Items are answered by
// a bounded worker pool (Options.BatchWorkers); each worker holds one
// admission slot at a time, so a batch cannot starve interactive queries —
// it competes for the same MaxInFlight budget, N items strong instead of
// N requests strong. Workers score serially (vsm.WithSerialScoring): the
// pool is already parallel across queries, and P workers scoring serially
// beat P×GOMAXPROCS goroutines contending for the same cores.

// BatchItem is one query in a BatchRequest. Advisor and Query are required;
// Backend defaults to the paper's VSM.
type BatchItem struct {
	Advisor string `json:"advisor"`
	Query   string `json:"query"`
	Backend string `json:"backend,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Queries []BatchItem `json:"queries"`
}

// BatchItemResult is the answer to one BatchItem, at the same position in
// the response as its item in the request. Failed items carry Error and a
// zero Count; one bad item never fails the rest of the batch. TraceID is
// per-item — each item's retrieval records its own span tree, so a slow
// item inside a batch is individually attributable on /tracez.
type BatchItemResult struct {
	Advisor string   `json:"advisor"`
	Query   string   `json:"query"`
	Backend string   `json:"backend,omitempty"`
	Count   int      `json:"count"`
	Answers []Answer `json:"answers,omitempty"`
	Cache   string   `json:"cache,omitempty"` // "hit" or "miss"
	Error   string   `json:"error,omitempty"`
	TraceID string   `json:"trace_id,omitempty"`
}

// BatchResponse is the body of POST /v1/batch. Count is len(Results);
// Errors counts the items that failed.
type BatchResponse struct {
	Count   int               `json:"count"`
	Errors  int               `json:"errors"`
	Results []BatchItemResult `json:"results"`
	TraceID string            `json:"trace_id,omitempty"`
}

// Batch answers every item through the cache and admission control, fanning
// out over min(BatchWorkers, len(items)) workers. Results keep request
// order. Item failures (unknown advisor, unknown backend, empty query,
// overload, timeout) are recorded per item, never returned as an error.
func (s *Service) Batch(ctx context.Context, items []BatchItem) []BatchItemResult {
	parent := obs.SpanFrom(ctx)
	results := make([]BatchItemResult, len(items))
	workers := s.opts.BatchWorkers
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	wctx := ctx
	if workers > 1 {
		wctx = vsm.WithSerialScoring(ctx)
	}
	// fair-share the remaining request budget across scheduling waves: item
	// 64 of a big batch gets the same slice as item 1 instead of inheriting
	// whatever the early items left over (see batchShare)
	share := batchShare(remainingBudget(ctx, s.opts.Timeout), len(items), workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i] = s.batchItem(wctx, parent, i, items[i], share)
			}
		}()
	}
	wg.Wait()
	return results
}

// batchItem answers one batch item under its own trace ID, span, and time
// share, so each item is individually attributable in traces and responses
// and cannot consume the budget of the items behind it.
func (s *Service) batchItem(ctx context.Context, parent *obs.Span, i int, item BatchItem, share time.Duration) BatchItemResult {
	res := BatchItemResult{Advisor: item.Advisor, Query: item.Query, Backend: item.Backend}
	span := parent.StartChild("batch.item")
	defer span.Finish()
	span.SetAttrInt("index", i)
	span.SetAttr("advisor", item.Advisor)
	// the item's clock starts when a worker picks it up, not when the batch
	// arrived; the parent deadline still caps it (WithTimeout never extends)
	ctx, cancel := context.WithTimeout(ctx, share)
	defer cancel()
	ctx = obs.WithTraceID(ctx, obs.NewTraceID())
	res.TraceID = obs.TraceID(ctx)
	if span != nil {
		ctx = obs.ContextWithSpan(ctx, span)
	}
	if strings.TrimSpace(item.Query) == "" {
		res.Error = "empty query"
		span.SetAttr("outcome", "error")
		return res
	}
	answers, hit, err := s.CachedQueryBackend(ctx, item.Advisor, item.Backend, item.Query)
	if err != nil {
		res.Error = err.Error()
		span.SetAttr("outcome", "error")
		return res
	}
	res.Count = len(answers)
	res.Answers = toAnswers(answers)
	if hit {
		res.Cache = "hit"
	} else {
		res.Cache = "miss"
	}
	span.SetAttr("cache", res.Cache)
	return res
}

// handleBatch decodes, bounds, and answers POST /v1/batch.
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodySize+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodySize {
		writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", s.opts.MaxBodySize)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "could not parse batch: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.opts.MaxBatch)
		return
	}
	start := time.Now()
	// the whole batch runs inside one request budget; Batch splits it into
	// per-wave item shares
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	results := s.Batch(ctx, req.Queries)
	s.stats.recordBatch(time.Since(start), len(results))
	nerr := 0
	for i := range results {
		if results[i].Error != "" {
			nerr++
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Count:   len(results),
		Errors:  nerr,
		Results: results,
		TraceID: obs.TraceID(r.Context()),
	})
}
