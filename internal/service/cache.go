package service

import (
	"container/list"
	"hash/fnv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/textproc"
	"repro/internal/vsm"
)

// Cache is a sharded LRU over Stage-II query results, keyed on the
// advisor name plus the *normalized* query terms — "Avoid bank conflicts!"
// and "avoiding banks conflict" collapse to one entry, exactly the
// normalization the VSM applies before scoring, so a cached answer is always
// what retrieval would have produced.
//
// Values are []core.Answer slices; they are stored once and returned to
// every caller, so they must be treated as immutable.
//
// Concurrent misses on the same key are deduplicated single-flight style:
// one goroutine runs retrieval, the rest wait for its result.
type Cache struct {
	shards []*cacheShard
	stats  *Stats
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry
	flights map[string]*flight
}

type cacheEntry struct {
	key string
	val []core.Answer
}

type flight struct {
	done chan struct{}
	val  []core.Answer
	err  error
}

// NewCache creates a cache holding at most capacity entries spread over
// shards (both floored at 1; shards is capped by capacity so every shard
// can hold at least one entry).
func NewCache(capacity, shards int, stats *Stats) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache{shards: make([]*cacheShard, shards), stats: stats}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		capi := base
		if i < extra {
			capi++
		}
		c.shards[i] = &cacheShard{
			cap:     capi,
			ll:      list.New(),
			entries: make(map[string]*list.Element),
			flights: make(map[string]*flight),
		}
	}
	return c
}

// QueryKey derives the cache key for a query against a named advisor: the
// normalized terms joined in order, prefixed by the advisor name.
func QueryKey(advisor, query string) string {
	return QueryKeyTerms(advisor, textproc.NormalizeTerms(query))
}

// QueryKeyTerms is QueryKey over an already-normalized query term list —
// the annotate-once path: the serving layer normalizes each query exactly
// once and reuses the terms for both the cache key and retrieval scoring.
func QueryKeyTerms(advisor string, terms []string) string {
	return advisor + "\x00" + strings.Join(terms, " ")
}

// QueryKeyBackend extends QueryKeyTerms with the scoring backend. The
// default backend ("" or "vsm") keys exactly like QueryKeyTerms — the two
// spellings share cache entries because their answers are bit-identical —
// while alternate backends get a disjoint key space (terms never contain
// control bytes, so the "\x00\x01" marker cannot collide with a default
// key) under the same advisor prefix, so Invalidate drops every backend's
// entries for an advisor in one pass.
func QueryKeyBackend(advisor, backend string, terms []string) string {
	if backend == "" || backend == vsm.BackendVSM {
		return QueryKeyTerms(advisor, terms)
	}
	return advisor + "\x00\x01" + backend + "\x00" + strings.Join(terms, " ")
}

// QueryKeyFull extends QueryKeyBackend with the pruning decision. Pruned
// retrieval — the default — keys exactly like QueryKeyBackend, so default
// traffic keeps its cache entries across the flag; exhaustive (?prune=off)
// queries get a disjoint key space under the same advisor prefix ("\x00\x02"
// after the advisor name, which no default or backend key can produce), so
// an answer computed by one path is never served to a request that asked
// for the other, and Invalidate still drops both in one pass.
func QueryKeyFull(advisor, backend string, prune bool, terms []string) string {
	key := QueryKeyBackend(advisor, backend, terms)
	if prune {
		return key
	}
	return advisor + "\x00\x02" + key[len(advisor)+1:]
}

func (c *Cache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// GetOrCompute returns the cached value for key, computing and inserting it
// on a miss. hit reports whether the value came from the cache or from
// another goroutine's in-flight computation (both avoid running compute).
// Errors from compute are propagated to all waiters and never cached.
func (c *Cache) GetOrCompute(key string, compute func() ([]core.Answer, error)) (val []core.Answer, hit bool, err error) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		sh.mu.Unlock()
		c.stats.hits.Add(1)
		return v, true, nil
	}
	if fl, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		// served without running retrieval: a single-flight hit
		c.stats.hits.Add(1)
		return fl.val, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	sh.flights[key] = fl
	sh.mu.Unlock()

	c.stats.misses.Add(1)
	fl.val, fl.err = compute()
	close(fl.done)

	sh.mu.Lock()
	delete(sh.flights, key)
	if fl.err == nil {
		sh.insertLocked(key, fl.val, c.stats)
	}
	sh.mu.Unlock()
	return fl.val, false, fl.err
}

// insertLocked adds an entry, evicting from the tail past capacity.
func (sh *cacheShard) insertLocked(key string, val []core.Answer, stats *Stats) {
	if el, ok := sh.entries[key]; ok { // raced with another insert
		sh.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	sh.entries[key] = sh.ll.PushFront(&cacheEntry{key: key, val: val})
	for sh.ll.Len() > sh.cap {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.entries, back.Value.(*cacheEntry).key)
		stats.evictions.Add(1)
	}
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Invalidate drops every entry belonging to the named advisor — called when
// the registry hot-swaps that advisor, since cached answers reference the
// old rule set.
func (c *Cache) Invalidate(advisor string) int {
	prefix := advisor + "\x00"
	dropped := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		for key, el := range sh.entries {
			if strings.HasPrefix(key, prefix) {
				sh.ll.Remove(el)
				delete(sh.entries, key)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}
