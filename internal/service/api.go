package service

import (
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
)

// The /v1 wire types. Marshaling with encoding/json is deterministic (struct
// field order), so identical answers marshal to byte-identical bodies — the
// property the cache relies on for reproducible responses.

// AdvisorInfo is one element of GET /v1/advisors.
type AdvisorInfo struct {
	Name             string    `json:"name"`
	Title            string    `json:"title,omitempty"`
	Sentences        int       `json:"sentences"`
	Rules            int       `json:"rules"`
	CompressionRatio float64   `json:"compression_ratio"`
	BuiltAt          time.Time `json:"built_at"`
}

// Rule is one advising sentence in GET /v1/{advisor}/rules.
type Rule struct {
	Index    int    `json:"index"`
	Text     string `json:"text"`
	Section  string `json:"section,omitempty"`
	Selector string `json:"selector"`
}

// RulesResponse is the body of GET /v1/{advisor}/rules.
type RulesResponse struct {
	Advisor string `json:"advisor"`
	Count   int    `json:"count"`
	Rules   []Rule `json:"rules"`
}

// Answer is one Stage-II recommendation.
type Answer struct {
	Rule
	Score float64 `json:"score"`
}

// QueryResponse is the body of GET /v1/{advisor}/query. Cache status is
// reported in the X-Cache header, not the body, so repeated identical
// queries stay byte-identical. TraceID is per-request (it also appears in
// the X-Trace-Id header) and keys a sampled span tree on /tracez.
// Backend is present only when the client selected one explicitly, so the
// default path marshals byte-identically to a backend-unaware response.
// ShardsFailed is present only when a sharded advisor served degraded
// partial results (some index shards failed), so healthy responses stay
// byte-identical to a shard-unaware build.
type QueryResponse struct {
	Advisor      string   `json:"advisor"`
	Query        string   `json:"query"`
	Backend      string   `json:"backend,omitempty"`
	Count        int      `json:"count"`
	Answers      []Answer `json:"answers"`
	ShardsFailed int      `json:"shards_failed,omitempty"`
	TraceID      string   `json:"trace_id,omitempty"`
}

// BackendsResponse is the body of GET /v1/backends.
type BackendsResponse struct {
	Default  string   `json:"default"`
	Backends []string `json:"backends"`
}

// IssueAnswers pairs one profiler issue with its recommendations in
// POST /v1/{advisor}/report.
type IssueAnswers struct {
	Title   string   `json:"title"`
	Section string   `json:"section,omitempty"`
	Count   int      `json:"count"`
	Answers []Answer `json:"answers"`
}

// ReportResponse is the body of POST /v1/{advisor}/report.
type ReportResponse struct {
	Advisor string         `json:"advisor"`
	Program string         `json:"program,omitempty"`
	Issues  []IssueAnswers `json:"issues"`
	TraceID string         `json:"trace_id,omitempty"`
}

// ReloadResponse is the body of POST /v1/admin/reload: which advisor was
// reloaded ("" = all), how long the rebuild+swap took, and the lifecycle
// state after the swap.
type ReloadResponse struct {
	Advisor       string          `json:"advisor,omitempty"`
	DurationMicro int64           `json:"duration_micros"`
	State         lifecycle.State `json:"state"`
	TraceID       string          `json:"trace_id,omitempty"`
}

// ErrorResponse is every non-2xx body. TraceID carries the request's trace
// ID so a failure in a log or bug report links straight to its /tracez
// entry.
type ErrorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func toRule(s core.AdvisingSentence) Rule {
	return Rule{
		Index:    s.Index,
		Text:     s.Text,
		Section:  s.Section,
		Selector: s.Selector.String(),
	}
}

func toAnswers(answers []core.Answer) []Answer {
	out := make([]Answer, len(answers))
	for i, a := range answers {
		out[i] = Answer{Rule: toRule(a.Sentence), Score: a.Score}
	}
	return out
}

func advisorInfo(name string, a *core.Advisor) AdvisorInfo {
	return AdvisorInfo{
		Name:             name,
		Title:            a.Title(),
		Sentences:        a.SentenceCount(),
		Rules:            len(a.Rules()),
		CompressionRatio: a.CompressionRatio(),
		BuiltAt:          a.BuiltAt().UTC(),
	}
}
