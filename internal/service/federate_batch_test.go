package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// twoAdvisorService builds a service hosting the shared CUDA advisor plus
// an OpenCL advisor, for federation tests.
func twoAdvisorService(t testing.TB, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	reg.Add("cuda", e2eAdvisor(t))
	g := corpus.GenerateSized(corpus.OpenCL, 150, 0.3, 7)
	reg.Add("opencl", core.New().BuildFromSentences(g.Doc, g.Sentences))
	svc := New(reg, opts)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// TestAskPreservesPerAdvisorOrder: the max-normalization used for the
// federated merge is strictly monotone per advisor, so extracting one
// advisor's answers from the merged list must reproduce that advisor's own
// ranking exactly — federation reweighs across advisors, never within one.
func TestAskPreservesPerAdvisorOrder(t *testing.T) {
	svc, _ := twoAdvisorService(t, Options{})
	const q = "memory bandwidth and access patterns"
	const k = 5
	merged, errs := svc.Ask(context.Background(), "", q, k)
	if len(errs) != 0 {
		t.Fatalf("ask errors: %v", errs)
	}
	if len(merged) == 0 {
		t.Fatal("federated ask found nothing")
	}
	for _, advisor := range []string{"cuda", "opencl"} {
		own, _, err := svc.CachedQuery(context.Background(), advisor, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(own) > k {
			own = own[:k]
		}
		var fromMerge []int
		for _, fa := range merged {
			if fa.Advisor == advisor {
				fromMerge = append(fromMerge, fa.Rule.Index)
			}
		}
		if len(fromMerge) != len(own) {
			t.Fatalf("%s: merge holds %d answers, advisor returned %d", advisor, len(fromMerge), len(own))
		}
		for i := range own {
			if own[i].Sentence.Index != fromMerge[i] {
				t.Errorf("%s: rank %d is rule %d in the merge but %d natively",
					advisor, i, fromMerge[i], own[i].Sentence.Index)
			}
		}
	}
	// the best answer of each contributing advisor is normalized to 1.0
	seen := map[string]bool{}
	for _, fa := range merged {
		if !seen[fa.Advisor] {
			seen[fa.Advisor] = true
			if fa.Norm != 1.0 {
				t.Errorf("%s's best answer has norm %v, want 1.0", fa.Advisor, fa.Norm)
			}
		}
	}
}

// TestAskDeterministic: identical asks produce identical merged rankings
// (the sort is fully tiebroken).
func TestAskDeterministic(t *testing.T) {
	svc, _ := twoAdvisorService(t, Options{})
	const q = "overlapping computation with data transfer"
	a, _ := svc.Ask(context.Background(), "", q, 4)
	b, _ := svc.Ask(context.Background(), "", q, 4)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Advisor != b[i].Advisor || a[i].Rule.Index != b[i].Rule.Index || a[i].Norm != b[i].Norm {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestBatchHandlerLimits table-drives the request-shape edge cases of
// POST /v1/batch: malformed and empty bodies, oversized batches, and the
// one-bad-item-does-not-fail-the-batch contract.
func TestBatchHandlerLimits(t *testing.T) {
	_, ts := newTestService(t, Options{MaxBatch: 3})
	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, []byte(b.String())
	}
	item := `{"advisor":"cuda","query":"memory latency"}`
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", `{nope`, 400},
		{"empty object", `{}`, 400},
		{"empty queries", `{"queries":[]}`, 400},
		{"at limit", `{"queries":[` + item + `,` + item + `,` + item + `]}`, 200},
		{"over limit", `{"queries":[` + item + `,` + item + `,` + item + `,` + item + `]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(tc.body)
			if code != tc.want {
				t.Errorf("status %d, want %d (%s)", code, tc.want, body)
			}
		})
	}

	t.Run("bad items isolated", func(t *testing.T) {
		code, body := post(`{"queries":[
			{"advisor":"cuda","query":"memory latency"},
			{"advisor":"cuda","query":"","backend":""},
			{"advisor":"cuda","query":"anything","backend":"nope"}
		]}`)
		if code != 200 {
			t.Fatalf("status %d: %s", code, body)
		}
		var br BatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		if br.Count != 3 || br.Errors != 2 {
			t.Fatalf("count=%d errors=%d, want 3/2", br.Count, br.Errors)
		}
		if br.Results[0].Error != "" || br.Results[1].Error == "" || br.Results[2].Error == "" {
			t.Errorf("error placement wrong: %+v", br.Results)
		}
		if !strings.Contains(br.Results[2].Error, "unknown scoring backend") {
			t.Errorf("item 2 error %q does not name the backend failure", br.Results[2].Error)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		svc2, ts2 := newTestService(t, Options{MaxBodySize: 128})
		_ = svc2
		resp, err := http.Post(ts2.URL+"/v1/batch", "application/json",
			strings.NewReader(`{"queries":[{"advisor":"cuda","query":"`+strings.Repeat("x ", 200)+`"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413", resp.StatusCode)
		}
	})
}

// TestBatchMatchesSequential: a batch answer must be answer-for-answer
// identical to asking the same queries one at a time (same cache, same
// backend), independent of worker interleaving.
func TestBatchMatchesSequential(t *testing.T) {
	svc, _ := newTestService(t, Options{BatchWorkers: 4})
	var items []BatchItem
	for i := 0; i < 12; i++ {
		items = append(items, BatchItem{
			Advisor: "cuda",
			Query:   fmt.Sprintf("memory access pattern variant %d", i),
			Backend: []string{"", "vsm", "bm25"}[i%3],
		})
	}
	results := svc.Batch(context.Background(), items)
	for i, item := range items {
		want, _, err := svc.CachedQueryBackend(context.Background(), item.Advisor, item.Backend, item.Query)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Error != "" {
			t.Fatalf("item %d failed: %s", i, results[i].Error)
		}
		if len(results[i].Answers) != len(want) {
			t.Fatalf("item %d: %d answers via batch, %d sequential", i, len(results[i].Answers), len(want))
		}
		for j := range want {
			if results[i].Answers[j].Index != want[j].Sentence.Index || results[i].Answers[j].Score != want[j].Score {
				t.Errorf("item %d answer %d: batch (%d, %v) vs sequential (%d, %v)",
					i, j, results[i].Answers[j].Index, results[i].Answers[j].Score,
					want[j].Sentence.Index, want[j].Score)
			}
		}
	}
}

// TestBatchAskReplaceRace hammers /v1/batch and /v1/ask concurrently with
// Registry.Replace hot-swaps (run under -race in CI): no request may be
// lost or crash, every batch response carries exactly its items with unique
// per-item trace IDs, and the service settles consistent afterwards.
func TestBatchAskReplaceRace(t *testing.T) {
	svc, ts := twoAdvisorService(t, Options{MaxBatch: 16, BatchWorkers: 4, Timeout: 10 * time.Second})

	const (
		clients  = 6
		rounds   = 8
		swappers = 2
	)
	// one replacement advisor per swapper: Registry.Replace stamps the
	// advisor with its serving name, so sharing one instance across
	// swappers would be a caller-side race, not a service one
	replacements := make([]*core.Advisor, swappers)
	for s := range replacements {
		g := corpus.GenerateSized(corpus.CUDA, 100, 0.3, int64(11+s))
		replacements[s] = core.New().BuildFromSentences(g.Doc, g.Sentences)
	}
	var (
		mu       sync.Mutex
		traceIDs = map[string]int{}
	)
	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	for s := 0; s < swappers; s++ {
		swapWG.Add(1)
		go func(s int) {
			defer swapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					svc.Reload("cuda", replacements[s])
					time.Sleep(time.Millisecond)
				}
			}
		}(s)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// alternate batch and federated ask
				if (c+r)%2 == 0 {
					body := fmt.Sprintf(`{"queries":[
						{"advisor":"cuda","query":"memory latency round %d"},
						{"advisor":"opencl","query":"work group size round %d"},
						{"advisor":"cuda","query":"divergent warps","backend":"bm25"}
					]}`, r, r)
					resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					var br BatchResponse
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if br.Count != 3 || len(br.Results) != 3 {
						t.Errorf("client %d round %d: lost batch items: %+v", c, r, br)
						return
					}
					mu.Lock()
					for _, res := range br.Results {
						traceIDs[res.TraceID]++
					}
					mu.Unlock()
				} else {
					resp, err := http.Get(ts.URL + "/v1/ask?q=memory+bandwidth&k=3")
					if err != nil {
						t.Error(err)
						return
					}
					var ar AskResponse
					err = json.NewDecoder(resp.Body).Decode(&ar)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode != 200 {
						t.Errorf("client %d round %d: ask status %d", c, r, resp.StatusCode)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	swapWG.Wait()

	// every batch item got its own fresh trace ID
	for id, n := range traceIDs {
		if id == "" {
			t.Error("batch item with empty trace ID")
		}
		if n > 1 {
			t.Errorf("trace ID %s reused %d times", id, n)
		}
	}
	// the service is still coherent: a fresh query answers normally
	if _, _, err := svc.CachedQuery(context.Background(), "cuda", "final sanity query"); err != nil {
		t.Errorf("post-hammer query failed: %v", err)
	}
}
