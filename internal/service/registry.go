// Package service is the production serving layer of the Egeria
// reproduction: a registry of named advisors (one per guide), a versioned
// JSON API over Stage-II retrieval, a sharded LRU query cache with
// single-flight deduplication, and an admission-control front (bounded
// concurrency, per-request timeouts, overload rejection, access logging,
// graceful draining).
//
// The paper ships Egeria's output as a served web artifact (Figs. 6-7); this
// package is the layer that makes that artifact hold up under real traffic:
// the same advisor lookup becomes cheap (cache), bounded (admission), and
// observable (/statsz).
package service

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Registry holds the advisors a Service exposes, keyed by name ("cuda").
// It is safe for concurrent use; reads take a shared lock so request
// handling never blocks behind a rebuild — Replace swaps a fully built
// advisor in atomically.
type Registry struct {
	mu       sync.RWMutex
	advisors map[string]*core.Advisor
	logf     func(format string, args ...any) // hot-swap log; nil = silent
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{advisors: make(map[string]*core.Advisor)}
}

// SetLogf installs the sink for hot-swap log lines
// ("reloaded cuda: 3 added, 1 removed").
func (r *Registry) SetLogf(logf func(format string, args ...any)) {
	r.mu.Lock()
	r.logf = logf
	r.mu.Unlock()
}

// Add registers an advisor under name, overwriting any previous entry
// without diffing (use Replace for the logged hot-swap path).
func (r *Registry) Add(name string, a *core.Advisor) {
	a.SetName(name)
	r.mu.Lock()
	r.advisors[name] = a
	r.mu.Unlock()
}

// Get returns the advisor registered under name.
func (r *Registry) Get(name string) (*core.Advisor, bool) {
	r.mu.RLock()
	a, ok := r.advisors[name]
	r.mu.RUnlock()
	return a, ok
}

// Names returns the registered advisor names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.advisors))
	for n := range r.advisors {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered advisors.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.advisors)
}

// Replace hot-swaps the advisor under name with next and returns the rule
// diff against the previous version (zero diff when the name was new). The
// swap is atomic: concurrent Gets see either the old or the new advisor,
// never a partially built one. A registered log sink receives the
// "reloaded cuda: 3 added, 1 removed" line.
func (r *Registry) Replace(name string, next *core.Advisor) core.RulesDiff {
	next.SetName(name)
	r.mu.Lock()
	prev := r.advisors[name]
	r.advisors[name] = next
	logf := r.logf
	r.mu.Unlock()
	var diff core.RulesDiff
	if prev != nil {
		diff = core.DiffRules(prev, next)
		if logf != nil {
			logf("reloaded %s: %s", name, diff.Short())
		}
	} else if logf != nil {
		logf("loaded %s: %d rules", name, len(next.Rules()))
	}
	return diff
}

// BuildAll constructs a registry by running every builder concurrently — the
// startup path for multi-guide serving, where each Stage-I pass is expensive
// and independent. A builder returning an error fails the whole startup.
func BuildAll(builders map[string]func() (*core.Advisor, error)) (*Registry, error) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for name, build := range builders {
		wg.Add(1)
		go func(name string, build func() (*core.Advisor, error)) {
			defer wg.Done()
			a, err := build()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("build advisor %q: %w", name, err)
				}
				mu.Unlock()
				return
			}
			reg.Add(name, a)
		}(name, build)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return reg, nil
}
