package service

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vsm"
)

// Per-advisor circuit breakers keep one slow or failing advisor from
// stalling the federation fan-out: /v1/ask skips advisors whose breaker is
// open (reporting them in the errors map) instead of burning the request
// budget timing out against them, and a half-open probe lets the advisor
// back in once it answers again.
//
// The state machine is the classic three states:
//
//	closed    -> open       after Threshold consecutive infrastructure
//	                        failures (timeouts, internal errors — never
//	                        client mistakes like an unknown backend)
//	open      -> half-open  after Cooldown, admitting exactly one probe
//	half-open -> closed     when the probe succeeds
//	half-open -> open       when the probe fails (cooldown restarts)
//
// Every transition increments service_breaker_transitions_total and the
// per-advisor state gauge service_breaker_state{advisor=...} tracks the
// current state (0 closed, 1 open, 2 half-open) on /metricz.

// BreakerState enumerates the circuit breaker states.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the state name as used on /statsz and in spans.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Default breaker tuning: open after 5 consecutive failures, try a probe
// after 2s. Both are per-advisor and configurable via Options.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
)

// ErrBreakerOpen: the advisor's circuit breaker is open and the call was
// skipped without attempting retrieval.
var ErrBreakerOpen = errors.New("service: circuit breaker open")

// Breaker is one advisor's circuit breaker. All methods are safe for
// concurrent use; a nil *Breaker is a valid always-closed no-op, so callers
// without breaker wiring pay one nil check.
type Breaker struct {
	mu          sync.Mutex
	state       BreakerState
	failures    int // consecutive infrastructure failures while closed
	threshold   int
	cooldown    time.Duration
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	now         func() time.Time
	transitions *obs.Counter
	stateGauge  *obs.Gauge
}

// NewBreaker creates a closed breaker. threshold <= 0 and cooldown <= 0
// select the defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// setNow installs a fake clock — the hook deterministic tests use to walk
// the cooldown without sleeping.
func (b *Breaker) setNow(f func() time.Time) {
	b.mu.Lock()
	b.now = f
	b.mu.Unlock()
}

func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.transitions.Inc()
	b.stateGauge.Set(int64(s))
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, at which point the breaker turns half-open
// and admits exactly one probe; further calls are rejected until that probe
// reports back through Record.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports a call outcome: failure=true for infrastructure failures
// (see breakerFailure), false for successes. Client errors should not be
// recorded at all.
func (b *Breaker) Record(failure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if !failure {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.setState(BreakerOpen)
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.setState(BreakerOpen)
			b.openedAt = b.now()
			b.failures = b.threshold
		} else {
			b.setState(BreakerClosed)
			b.failures = 0
		}
	default: // open: a straggler from before the trip; the cooldown decides
	}
}

// State returns the current state without advancing the machine.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerSet is the per-advisor breaker table, created lazily on first use
// so hot swaps and late registrations need no extra wiring.
type breakerSet struct {
	mu        sync.Mutex
	m         map[string]*Breaker
	threshold int
	cooldown  time.Duration
	metrics   *obs.Registry
}

func newBreakerSet(threshold int, cooldown time.Duration, metrics *obs.Registry) *breakerSet {
	return &breakerSet{
		m:         map[string]*Breaker{},
		threshold: threshold,
		cooldown:  cooldown,
		metrics:   metrics,
	}
}

// get returns the advisor's breaker, creating it closed on first use.
func (s *breakerSet) get(advisor string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[advisor]
	if !ok {
		b = NewBreaker(s.threshold, s.cooldown)
		b.transitions = s.metrics.Counter("service_breaker_transitions_total")
		b.stateGauge = s.metrics.Gauge(`service_breaker_state{advisor="` + advisor + `"}`)
		s.m[advisor] = b
	}
	return b
}

// snapshot returns the per-advisor breaker states, sorted by advisor name —
// the /statsz view.
func (s *breakerSet) snapshot() []BreakerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BreakerInfo, 0, len(s.m))
	for name, b := range s.m {
		out = append(out, BreakerInfo{Advisor: name, State: b.State().String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Advisor < out[j].Advisor })
	return out
}

// BreakerInfo is one advisor's breaker state on /statsz.
type BreakerInfo struct {
	Advisor string `json:"advisor"`
	State   string `json:"state"`
}

// breakerFailure classifies an error for the breaker: infrastructure
// failures (timeouts, cancellations, injected faults, anything unexpected)
// count; client mistakes (unknown advisor or backend) and admission
// shedding (the server as a whole is overloaded, not this advisor) do not.
func breakerFailure(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrUnknownAdvisor), errors.Is(err, vsm.ErrUnknownBackend):
		return false
	case errors.Is(err, ErrOverloaded):
		return false
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return true
	default:
		return true
	}
}
