package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// small advisors for registry tests; built once (Stage I is the expensive part)
var (
	tinyOnce sync.Once
	tinyV1   *core.Advisor
	tinyV2   *core.Advisor
)

func tinyAdvisors(t testing.TB) (*core.Advisor, *core.Advisor) {
	t.Helper()
	tinyOnce.Do(func() {
		fw := core.New()
		g1 := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 41)
		g2 := corpus.GenerateSized(corpus.CUDA, 60, 0.3, 42)
		tinyV1 = fw.BuildFromSentences(g1.Doc, g1.Sentences)
		tinyV2 = fw.BuildFromSentences(g2.Doc, g2.Sentences)
	})
	return tinyV1, tinyV2
}

func TestRegistryAddGetNames(t *testing.T) {
	v1, _ := tinyAdvisors(t)
	r := NewRegistry()
	if _, ok := r.Get("cuda"); ok {
		t.Error("empty registry returned an advisor")
	}
	r.Add("cuda", v1)
	r.Add("alpha", v1)
	if got, ok := r.Get("cuda"); !ok || got != v1 {
		t.Error("Get after Add failed")
	}
	if v1.Name() != "alpha" {
		t.Errorf("Add must stamp the advisor name; got %q", v1.Name())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "cuda" {
		t.Errorf("Names() = %v, want sorted [alpha cuda]", names)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d", r.Len())
	}
}

func TestRegistryReplaceLogsDiff(t *testing.T) {
	v1, v2 := tinyAdvisors(t)
	r := NewRegistry()
	var mu sync.Mutex
	var lines []string
	r.SetLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	r.Replace("cuda", v1) // fresh name: "loaded"
	diff := r.Replace("cuda", v2)
	if got, _ := r.Get("cuda"); got != v2 {
		t.Fatal("Replace did not swap the advisor")
	}
	want := core.DiffRules(v1, v2)
	if diff.Short() != want.Short() {
		t.Errorf("diff %q, want %q", diff.Short(), want.Short())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("log lines %v, want 2", lines)
	}
	if !strings.HasPrefix(lines[0], "loaded cuda:") {
		t.Errorf("first line %q, want loaded", lines[0])
	}
	wantLine := fmt.Sprintf("reloaded cuda: %s", want.Short())
	if lines[1] != wantLine {
		t.Errorf("hot-swap line %q, want %q", lines[1], wantLine)
	}
}

func TestBuildAllConcurrent(t *testing.T) {
	fw := core.New()
	builders := map[string]func() (*core.Advisor, error){}
	for i, reg := range []corpus.Register{corpus.CUDA, corpus.OpenCL, corpus.XeonPhi} {
		reg, seed := reg, int64(50+i)
		name := fmt.Sprintf("guide-%d", i)
		builders[name] = func() (*core.Advisor, error) {
			g := corpus.GenerateSized(reg, 50, 0.3, seed)
			return fw.BuildFromSentences(g.Doc, g.Sentences), nil
		}
	}
	r, err := BuildAll(builders)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("registry has %d advisors, want 3", r.Len())
	}
	for _, name := range r.Names() {
		a, ok := r.Get(name)
		if !ok || a.SentenceCount() == 0 {
			t.Errorf("advisor %q empty or missing", name)
		}
		if a.Name() != name {
			t.Errorf("advisor name %q, want %q", a.Name(), name)
		}
	}
}

func TestBuildAllPropagatesError(t *testing.T) {
	boom := errors.New("corpus unavailable")
	v1, _ := tinyAdvisors(t)
	_, err := BuildAll(map[string]func() (*core.Advisor, error){
		"ok":  func() (*core.Advisor, error) { return v1, nil },
		"bad": func() (*core.Advisor, error) { return nil, boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want builder error surfaced, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error %v must name the failing advisor", err)
	}
}
