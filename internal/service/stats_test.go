package service

import (
	"testing"
	"time"
)

// TestLatencyRingPercentiles pins the nearest-rank method (1-indexed rank
// ceil(p*n)) against hand-computed quantiles. The old truncating index
// int(p*(n-1)) read one sample low for high quantiles on large rings — over
// 1024 samples p99 landed on index 1012 instead of 1013.
func TestLatencyRingPercentiles(t *testing.T) {
	fill := func(n int) *latencyRing {
		r := &latencyRing{}
		// record 1..n out of order (descending) so the test also covers the
		// sort inside percentiles
		for v := n; v >= 1; v-- {
			r.record(time.Duration(v))
		}
		return r
	}
	cases := []struct {
		name string
		n    int
		p    float64
		want time.Duration // nearest-rank: value at rank ceil(p*n) of 1..n
	}{
		{"empty", 0, 0.50, 0},
		{"empty p0", 0, 0, 0},
		{"empty p100", 0, 1, 0},
		{"single p0", 1, 0, 1},
		{"single p50", 1, 0.50, 1},
		{"single p99", 1, 0.99, 1},
		{"single p100", 1, 1, 1},
		{"p0 clamps to min", 10, 0, 1},
		{"p100 is max", 10, 1, 10},
		{"p50 of 10", 10, 0.50, 5},  // ceil(5.0) = rank 5
		{"p99 of 10", 10, 0.99, 10}, // ceil(9.9) = rank 10
		{"p90 of 10", 10, 0.90, 9},  // ceil(9.0) = rank 9
		{"p50 of 11", 11, 0.50, 6},  // ceil(5.5) = rank 6, the true median
		{"p25 of 100", 100, 0.25, 25},
		{"p99 of 100", 100, 0.99, 99},
		// the regression case: rank ceil(0.99*1024) = 1014 (value 1014);
		// the truncating index would have returned 1013
		{"p99 of full ring", latencyRingSize, 0.99, 1014},
		{"p50 of full ring", latencyRingSize, 0.50, 512},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r *latencyRing
			if tc.n == 0 {
				r = &latencyRing{}
			} else {
				r = fill(tc.n)
			}
			got := r.percentiles(tc.p)[0]
			if got != tc.want {
				t.Errorf("n=%d p=%v: got %d, want %d", tc.n, tc.p, got, tc.want)
			}
		})
	}

	t.Run("empty ring multi-quantile all zero", func(t *testing.T) {
		r := &latencyRing{}
		for i, d := range r.percentiles(0, 0.5, 0.99, 1) {
			if d != 0 {
				t.Errorf("quantile %d of empty ring = %d, want 0", i, d)
			}
		}
	})

	t.Run("multiple quantiles in one call", func(t *testing.T) {
		r := fill(100)
		got := r.percentiles(0.50, 0.90, 0.99)
		want := []time.Duration{50, 90, 99}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("quantile %d: got %d, want %d", i, got[i], want[i])
			}
		}
	})

	t.Run("ring wraps and keeps newest window", func(t *testing.T) {
		r := &latencyRing{}
		// overfill: 1..2048 — only 1025..2048 survive in the ring
		for v := 1; v <= 2*latencyRingSize; v++ {
			r.record(time.Duration(v))
		}
		if got := r.percentiles(1)[0]; got != 2*latencyRingSize {
			t.Errorf("max after wrap: got %d, want %d", got, 2*latencyRingSize)
		}
		if got := r.percentiles(0)[0]; got != latencyRingSize+1 {
			t.Errorf("min after wrap: got %d, want %d", got, latencyRingSize+1)
		}
	})
}
