package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func answersOf(texts ...string) []core.Answer {
	out := make([]core.Answer, len(texts))
	for i, t := range texts {
		out[i] = core.Answer{Sentence: core.AdvisingSentence{Index: i, Text: t}, Score: 0.5}
	}
	return out
}

func TestQueryKeyNormalization(t *testing.T) {
	// same advisor + same normalized terms -> same key, across casing,
	// punctuation and inflection (Porter stemming)
	a := QueryKey("cuda", "Avoid bank conflicts!")
	b := QueryKey("cuda", "avoiding banks conflict")
	if a != b {
		t.Errorf("normalized keys differ: %q vs %q", a, b)
	}
	if QueryKey("cuda", "avoid bank conflicts") == QueryKey("opencl", "avoid bank conflicts") {
		t.Error("keys must separate advisors")
	}
	if QueryKey("cuda", "memory latency") == QueryKey("cuda", "thread divergence") {
		t.Error("distinct queries must produce distinct keys")
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	stats := newStats(obs.NewRegistry())
	c := NewCache(4, 2, stats)
	calls := 0
	get := func(key string) ([]core.Answer, bool) {
		val, hit, err := c.GetOrCompute(key, func() ([]core.Answer, error) {
			calls++
			return answersOf(key), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return val, hit
	}
	if _, hit := get("a"); hit {
		t.Error("first lookup must miss")
	}
	if val, hit := get("a"); !hit || val[0].Sentence.Text != "a" {
		t.Errorf("second lookup: hit=%v val=%v", hit, val)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	// overflow the cache and check eviction accounting
	for i := 0; i < 20; i++ {
		get(fmt.Sprintf("key-%d", i))
	}
	if got := c.Len(); got > 4 {
		t.Errorf("cache holds %d entries, cap 4", got)
	}
	if stats.evictions.Value() == 0 {
		t.Error("no evictions recorded after overflow")
	}
	if stats.hits.Value() != 1 || stats.misses.Value() != int64(calls) {
		t.Errorf("hits %d misses %d calls %d", stats.hits.Value(), stats.misses.Value(), calls)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	stats := newStats(obs.NewRegistry())
	c := NewCache(2, 1, stats) // single shard so order is observable
	touch := func(key string) bool {
		_, hit, _ := c.GetOrCompute(key, func() ([]core.Answer, error) { return nil, nil })
		return hit
	}
	touch("a")
	touch("b")
	touch("a") // a is now most recent
	touch("c") // evicts b
	if !touch("a") {
		t.Error("a should have survived (recently used)")
	}
	if touch("b") {
		t.Error("b should have been evicted")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	stats := newStats(obs.NewRegistry())
	c := NewCache(16, 4, stats)
	var computeCalls int
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]core.Answer, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, _, err := c.GetOrCompute("shared", func() ([]core.Answer, error) {
				computeCalls++ // only one goroutine may ever get here
				once.Do(func() { close(started) })
				<-release
				return answersOf("computed"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = val
		}(i)
	}
	<-started // the flight is in progress; all other goroutines must wait on it
	close(release)
	wg.Wait()
	if computeCalls != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", computeCalls)
	}
	for i, r := range results {
		if len(r) != 1 || r[0].Sentence.Text != "computed" {
			t.Errorf("waiter %d got %v", i, r)
		}
	}
	if stats.misses.Value() != 1 {
		t.Errorf("misses %d, want 1 (single flight)", stats.misses.Value())
	}
	if stats.hits.Value() != waiters-1 {
		t.Errorf("hits %d, want %d (deduplicated waiters)", stats.hits.Value(), waiters-1)
	}
}

func TestCacheComputeErrorNotCached(t *testing.T) {
	c := NewCache(4, 1, newStats(obs.NewRegistry()))
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrCompute("k", func() ([]core.Answer, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("errors must not be cached: compute ran %d times, want 2", calls)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(32, 4, newStats(obs.NewRegistry()))
	fill := func(advisor, q string) {
		c.GetOrCompute(QueryKey(advisor, q), func() ([]core.Answer, error) { return nil, nil })
	}
	for _, q := range []string{"memory latency", "warp divergence", "bank conflicts"} {
		fill("cuda", q)
		fill("opencl", q)
	}
	if n := c.Len(); n != 6 {
		t.Fatalf("cache holds %d, want 6", n)
	}
	if dropped := c.Invalidate("cuda"); dropped != 3 {
		t.Errorf("invalidate dropped %d, want 3", dropped)
	}
	if n := c.Len(); n != 3 {
		t.Errorf("cache holds %d after invalidate, want 3 (opencl untouched)", n)
	}
	// the opencl entries must still hit
	_, hit, _ := c.GetOrCompute(QueryKey("opencl", "memory latency"),
		func() ([]core.Answer, error) { return nil, nil })
	if !hit {
		t.Error("opencl entry lost by cuda invalidation")
	}
}

func TestCacheTinyCapacity(t *testing.T) {
	// degenerate configs must clamp, not panic
	c := NewCache(0, 0, newStats(obs.NewRegistry()))
	if len(c.shards) != 1 {
		t.Fatalf("want 1 shard, got %d", len(c.shards))
	}
	c2 := NewCache(2, 8, newStats(obs.NewRegistry())) // more shards than capacity
	if len(c2.shards) != 2 {
		t.Fatalf("shards must be capped by capacity: got %d", len(c2.shards))
	}
}
