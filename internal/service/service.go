package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/nlp"
	"repro/internal/nvvp"
	"repro/internal/obs"
	"repro/internal/vsm"
)

// Options configures a Service. The zero value gets sane production
// defaults.
type Options struct {
	CacheSize    int           // total cached queries (default 1024)
	CacheShards  int           // LRU shards (default 8)
	MaxInFlight  int           // concurrent retrievals (default 64)
	MaxQueue     int           // waiting-room size (default 4*MaxInFlight)
	Timeout      time.Duration // per-request deadline (default 2s)
	MaxBodySize  int64         // report upload cap in bytes (default 1 MiB)
	MaxBatch     int           // queries accepted per /v1/batch request (default 64)
	BatchWorkers int           // worker pool answering one batch (default 8, capped by MaxInFlight)
	Logger       *slog.Logger  // structured access log (default: discard)

	// Tracer samples request traces for /tracez. Every request gets a
	// trace ID (X-Trace-Id header, trace_id response field, access log)
	// regardless; the tracer only decides whether the span tree is
	// recorded. nil: never sampled.
	Tracer *obs.Tracer
	// Metrics is the registry the service's counters and latency
	// histograms live in, served on /metricz (default obs.Default()).
	Metrics *obs.Registry

	// NoPrune disables MaxScore pruning in Stage-II retrieval for every
	// query that does not carry its own ?prune= override. Pruned and
	// exhaustive retrieval return identical bytes (the parity suites prove
	// it), so this is an operational escape hatch, not a semantic switch.
	NoPrune bool

	// Fault is the fault-injection layer (see internal/fault). nil — the
	// production default — compiles every fault point to a single nil
	// check, the same pattern as unsampled obs spans.
	Fault *fault.Injector
	// BreakerThreshold is how many consecutive infrastructure failures
	// open an advisor's circuit breaker (default 5); BreakerCooldown is
	// how long an open breaker waits before admitting a half-open probe
	// (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 8
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.MaxBodySize <= 0 {
		o.MaxBodySize = 1 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.BatchWorkers <= 0 {
		o.BatchWorkers = 8
	}
	if o.BatchWorkers > o.MaxInFlight {
		o.BatchWorkers = o.MaxInFlight
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
	return o
}

// Service is the advising server: JSON API + cache + admission over a
// Registry. Create with New, mount via ServeHTTP (it implements
// http.Handler), and call BeginDrain before shutting the http.Server down.
type Service struct {
	reg      *Registry
	cache    *Cache
	admit    *Admission
	stats    *Stats
	opts     Options
	mux      *http.ServeMux
	flt      *fault.Injector // nil unless fault injection is enabled
	breakers *breakerSet     // per-advisor circuit breakers
	draining sync.RWMutex    // held exclusively only to flip drain
	drained  bool

	lcMu sync.RWMutex
	lc   *lifecycle.Manager // optional corpus lifecycle, see SetLifecycle
}

// New assembles a Service over reg. The registry's hot-swap log is routed to
// the service logger.
func New(reg *Registry, opts Options) *Service {
	opts = opts.withDefaults()
	stats := newStats(opts.Metrics)
	s := &Service{
		reg:      reg,
		cache:    NewCache(opts.CacheSize, opts.CacheShards, stats),
		admit:    NewAdmission(opts.MaxInFlight, opts.MaxQueue, stats),
		stats:    stats,
		opts:     opts,
		mux:      http.NewServeMux(),
		flt:      opts.Fault,
		breakers: newBreakerSet(opts.BreakerThreshold, opts.BreakerCooldown, opts.Metrics),
	}
	reg.SetLogf(func(format string, args ...any) {
		opts.Logger.Info(fmt.Sprintf(format, args...))
	})
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("GET /metricz", obs.MetricsHandler(opts.Metrics))
	s.mux.Handle("GET /tracez", obs.TraceHandler(opts.Tracer.Store()))
	s.mux.HandleFunc("GET /v1/advisors", s.handleAdvisors)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/ask", s.handleAsk)
	s.mux.HandleFunc("POST /v1/ask", s.handleAsk)
	s.mux.HandleFunc("GET /v1/{advisor}/rules", s.handleRules)
	s.mux.HandleFunc("GET /v1/{advisor}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/{advisor}/report", s.handleReport)
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleAdminReload)
	return s
}

// SetLifecycle attaches the corpus lifecycle manager: POST /v1/admin/reload
// triggers its rebuilds and /statsz gains a lifecycle section. Safe to call
// after the service is serving (the manager is usually wired once the
// registry is warm).
func (s *Service) SetLifecycle(lm *lifecycle.Manager) {
	s.lcMu.Lock()
	s.lc = lm
	s.lcMu.Unlock()
}

func (s *Service) lifecycleManager() *lifecycle.Manager {
	s.lcMu.RLock()
	defer s.lcMu.RUnlock()
	return s.lc
}

// Registry returns the advisor registry the service serves from.
func (s *Service) Registry() *Registry { return s.reg }

// Stats returns a point-in-time snapshot of the operational counters.
func (s *Service) Stats() StatsSnapshot {
	snap := s.stats.snapshot()
	snap.CacheSize = s.cache.Len()
	snap.Advisors = s.reg.Len()
	if lm := s.lifecycleManager(); lm != nil {
		st := lm.State()
		snap.Lifecycle = &st
	}
	snap.Breakers = s.breakers.snapshot()
	return snap
}

// Reload hot-swaps the named advisor and invalidates its cached answers.
// It returns the rule diff, for callers that want to surface it.
func (s *Service) Reload(name string, next *core.Advisor) core.RulesDiff {
	diff := s.reg.Replace(name, next)
	dropped := s.cache.Invalidate(name)
	if dropped > 0 {
		s.opts.Logger.Info("cache invalidated", "advisor", name, "entries", dropped)
	}
	return diff
}

// BeginDrain marks the service not-ready so load balancers (polling /readyz)
// stop sending traffic; in-flight requests keep running. Pair it with
// http.Server.Shutdown, which drains open connections.
func (s *Service) BeginDrain() {
	s.draining.Lock()
	s.drained = true
	s.draining.Unlock()
	s.opts.Logger.Info("draining: readyz now failing, in-flight requests continuing")
}

func (s *Service) isDraining() bool {
	s.draining.RLock()
	defer s.draining.RUnlock()
	return s.drained
}

// statusRecorder captures the response code for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler with per-request tracing, access
// logging, and in-flight accounting around the routed handlers. Every
// request gets a trace ID (returned in X-Trace-Id and logged); when the
// tracer samples the request, the handler pipeline records a span tree
// retrievable from /tracez by that ID.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.requests.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	ctx, root := s.opts.Tracer.Start(r.Context(), r.Method+" "+r.URL.Path)
	traceID := obs.TraceID(ctx)
	w.Header().Set("X-Trace-Id", traceID)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	if ferr := s.flt.Err(fault.ServiceHandler); ferr != nil {
		// injected handler fault: the request fails before routing, but
		// still as a well-formed JSON error carrying its trace ID
		writeError(rec, http.StatusInternalServerError, "%v", ferr)
	} else {
		s.mux.ServeHTTP(rec, r.WithContext(ctx))
	}
	dur := time.Since(start)
	if rec.status >= 500 {
		s.stats.errors5xx.Add(1)
	}
	if root != nil {
		root.SetAttrInt("status", rec.status)
		root.Finish()
	}
	s.opts.Logger.Info("access",
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"dur_micros", dur.Microseconds(),
		"cache", rec.Header().Get("X-Cache"),
		"trace", traceID,
	)
}

// CachedQuery answers q against the named advisor through the cache and
// admission control — the path shared by the JSON API and the HTML webui.
// hit reports whether retrieval was skipped. It always scores with the
// default (VSM) backend.
func (s *Service) CachedQuery(ctx context.Context, advisor, q string) (answers []core.Answer, hit bool, err error) {
	return s.CachedQueryBackend(ctx, advisor, "", q)
}

// CachedQueryBackend is CachedQuery with an explicit scoring backend ("" or
// "vsm" for the paper's TF-IDF/cosine default, "bm25" for the Okapi view
// over the same postings). Unknown backends fail fast with
// vsm.ErrUnknownBackend, before admission or annotation. Each backend keys
// its own cache entries; the default spellings share one key space.
//
// Against a sharded advisor a partially degraded result (some shards failed
// their fault draw) comes back as a success; callers that need the degraded
// shard count use CachedQueryFull.
func (s *Service) CachedQueryBackend(ctx context.Context, advisor, backend, q string) (answers []core.Answer, hit bool, err error) {
	answers, hit, _, err = s.CachedQueryFull(ctx, advisor, backend, q)
	return answers, hit, err
}

// partialAnswers carries a degraded sharded result out of the cache compute
// func as an error: GetOrCompute never caches errors, so a partial result —
// correct for the shards that ran, silently missing the rest — can never be
// served from the cache as if it were complete. CachedQueryFull unwraps it
// back into a success with a non-zero shard-failure count.
type partialAnswers struct {
	answers []core.Answer
	failed  int
	err     error // first shard failure
}

func (p *partialAnswers) Error() string {
	return fmt.Sprintf("service: partial results, %d shards failed: %v", p.failed, p.err)
}

// CachedQueryFull is CachedQueryBackend plus the degraded-shard count: when
// the advisor's index is sharded and some (but not all) shards failed their
// fault-injection draw, the answers cover the surviving shards and
// shardsFailed reports how many are missing. Such partial results are never
// cached. All shards failing is a real error (and counts toward the
// advisor's circuit breaker).
func (s *Service) CachedQueryFull(ctx context.Context, advisor, backend, q string) (answers []core.Answer, hit bool, shardsFailed int, err error) {
	// one span lookup covers the whole query path: with tracing off (or
	// this request unsampled) parent is nil and every child span below is
	// a no-op nil pointer — the hot path pays a single ctx.Value call
	parent := obs.SpanFrom(ctx)
	if !vsm.ValidBackend(backend) {
		return nil, false, 0, fmt.Errorf("%w: %q", vsm.ErrUnknownBackend, backend)
	}
	adv, ok := s.reg.Get(advisor)
	if !ok {
		return nil, false, 0, fmt.Errorf("%w: %q", ErrUnknownAdvisor, advisor)
	}
	// every outcome past this point feeds the advisor's circuit breaker:
	// successes reset it, infrastructure failures (timeouts, injected
	// faults, internal errors) count toward tripping it, and client errors
	// or server-wide overload are not this advisor's fault and record
	// nothing (see breakerFailure)
	defer func() {
		switch {
		case err == nil:
			s.breakers.get(advisor).Record(false)
		case breakerFailure(err):
			s.breakers.get(advisor).Record(true)
		}
	}()
	if ferr := s.flt.Err(fault.NLPAnnotate); ferr != nil {
		return nil, false, 0, ferr
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	admSpan := parent.StartChild("admission")
	if err := s.admit.Acquire(ctx); err != nil {
		admSpan.SetAttr("outcome", "rejected")
		admSpan.Finish()
		return nil, false, 0, err
	}
	admSpan.Finish()
	defer s.admit.Release()
	// annotate the query once: the normalized terms key the cache AND feed
	// retrieval on a miss, so the query text is never tokenized twice —
	// report answering (one CachedQuery per profiler issue) pays the query
	// NLP exactly once per issue
	annSpan := parent.StartChild("annotate")
	terms := nlp.QueryTerms(q)
	annSpan.SetAttrInt("terms", len(terms))
	annSpan.Finish()
	// the pruning decision: the request's explicit ?prune= override wins,
	// otherwise the server-wide default. It joins the cache key — pruned and
	// exhaustive answers are bit-identical, but an operator comparing the two
	// paths must never be handed a cached answer computed by the other one.
	prune := !s.opts.NoPrune
	if on, set := vsm.Pruning(ctx); set {
		prune = on
	}
	key := QueryKeyFull(advisor, backend, prune, terms)
	// run the lookup in a goroutine so an expired deadline returns promptly;
	// the computation itself finishes and still populates the cache
	type result struct {
		answers []core.Answer
		hit     bool
		err     error
	}
	serial := vsm.SerialScoring(ctx)
	cacheSpan := parent.StartChild("cache")
	ch := make(chan result, 1)
	go func() {
		a, h, e := s.cache.GetOrCompute(key, func() ([]core.Answer, error) {
			// a miss runs Stage-II retrieval; the score span hangs off the
			// cache span so a trace shows hit (no child) vs miss (scored)
			scoreSpan := cacheSpan.StartChild("score")
			defer scoreSpan.Finish()
			if backend != "" {
				scoreSpan.SetAttr("backend", backend)
			}
			// detach from the request ctx so the computation outlives an
			// expired deadline and still populates the cache, but carry the
			// caller's serial-scoring hint through — a batch worker pool is
			// already parallel across queries
			bctx := obs.ContextWithSpan(context.Background(), scoreSpan)
			if serial {
				bctx = vsm.WithSerialScoring(bctx)
			}
			// pruning defaults on, so only an exhaustive run marks the ctx
			if !prune {
				bctx = vsm.WithPruning(bctx, false)
			}
			if adv.ShardCount() > 1 {
				// sharded retrieval: the vsm.score fault point is drawn once
				// per shard inside the fan-out, so one failing shard degrades
				// the query to partial results instead of failing it
				sctx, outcome := vsm.WithShardOutcome(bctx)
				sctx = vsm.WithShardFault(sctx, func() error { return s.flt.Err(fault.VSMScore) })
				out, qerr := adv.QueryTermsBackendCtx(sctx, backend, terms)
				if qerr != nil {
					return nil, qerr
				}
				if failed := outcome.Failed(); failed > 0 {
					if failed >= outcome.Total() {
						return nil, fmt.Errorf("service: all %d index shards failed: %w", failed, outcome.Err())
					}
					scoreSpan.SetAttrInt("shards_failed", failed)
					return nil, &partialAnswers{answers: out, failed: failed, err: outcome.Err()}
				}
				scoreSpan.SetAttrInt("answers", len(out))
				return out, nil
			}
			// injected scoring faults surface here, inside the compute
			// func: GetOrCompute never caches errors, so a fault storm
			// cannot poison the cache with wrong answers
			if ferr := s.flt.Err(fault.VSMScore); ferr != nil {
				return nil, ferr
			}
			out, qerr := adv.QueryTermsBackendCtx(bctx, backend, terms)
			if qerr != nil {
				return nil, qerr
			}
			scoreSpan.SetAttrInt("answers", len(out))
			return out, nil
		})
		ch <- result{a, h, e}
	}()
	select {
	case res := <-ch:
		if cacheSpan != nil {
			cacheSpan.SetAttr("hit", strconv.FormatBool(res.hit))
			cacheSpan.Finish()
		}
		// a partial sharded result rides out of the compute func as an
		// error (so it is never cached); deliver it as a degraded success
		var partial *partialAnswers
		if errors.As(res.err, &partial) {
			return partial.answers, false, partial.failed, nil
		}
		return res.answers, res.hit, 0, res.err
	case <-ctx.Done():
		s.stats.timeouts.Add(1)
		if cacheSpan != nil {
			cacheSpan.SetAttr("outcome", "timeout")
			cacheSpan.Finish()
		}
		return nil, false, 0, ctx.Err()
	}
}

// ErrUnknownAdvisor: the path's {advisor} is not in the registry.
var ErrUnknownAdvisor = errors.New("service: unknown advisor")

// --- handlers ---------------------------------------------------------------

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() || s.reg.Len() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleAdvisors(w http.ResponseWriter, _ *http.Request) {
	names := s.reg.Names()
	infos := make([]AdvisorInfo, 0, len(names))
	for _, n := range names {
		if a, ok := s.reg.Get(n); ok {
			infos = append(infos, advisorInfo(n, a))
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleRules(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("advisor")
	adv, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown advisor %q", name)
		return
	}
	rules := adv.Rules()
	resp := RulesResponse{Advisor: name, Count: len(rules), Rules: make([]Rule, len(rules))}
	for i, rule := range rules {
		resp.Rules[i] = toRule(rule)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("advisor")
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	// absent/empty backend takes the default path and leaves the response
	// byte-identical to a backend-unaware build (Backend marshals omitempty)
	backend := strings.TrimSpace(r.URL.Query().Get("backend"))
	ctx := r.Context()
	// ?prune= is the per-request escape hatch around the server's pruning
	// default; absent means "use the default", and the answers are identical
	// bytes either way (only latency and vsm_prune_* metrics differ)
	switch strings.ToLower(strings.TrimSpace(r.URL.Query().Get("prune"))) {
	case "":
	case "on", "true", "1":
		ctx = vsm.WithPruning(ctx, true)
	case "off", "false", "0":
		ctx = vsm.WithPruning(ctx, false)
	default:
		writeError(w, http.StatusBadRequest, "invalid prune parameter %q (want on or off)", r.URL.Query().Get("prune"))
		return
	}
	start := time.Now()
	answers, hit, shardsFailed, err := s.CachedQueryFull(ctx, name, backend, q)
	s.stats.recordQuery(time.Since(start))
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Advisor:      name,
		Query:        q,
		Backend:      backend,
		Count:        len(answers),
		Answers:      toAnswers(answers),
		ShardsFailed: shardsFailed,
		TraceID:      obs.TraceID(r.Context()),
	})
}

// handleBackends lists the scoring backends every advisor offers, default
// first — clients use it to populate a backend picker.
func (s *Service) handleBackends(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, BackendsResponse{Default: vsm.BackendVSM, Backends: vsm.Backends()})
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("advisor")
	if _, ok := s.reg.Get(name); !ok {
		writeError(w, http.StatusNotFound, "unknown advisor %q", name)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodySize+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodySize {
		writeError(w, http.StatusRequestEntityTooLarge, "report exceeds %d bytes", s.opts.MaxBodySize)
		return
	}
	report, err := parseReport(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "could not parse report: %v", err)
		return
	}
	start := time.Now()
	resp := ReportResponse{Advisor: name, Program: report.Program, TraceID: obs.TraceID(r.Context())}
	for _, issue := range report.Issues() {
		answers, _, err := s.CachedQuery(r.Context(), name, issue.Query())
		if err != nil {
			s.stats.recordReport(time.Since(start))
			writeQueryError(w, err)
			return
		}
		resp.Issues = append(resp.Issues, IssueAnswers{
			Title:   issue.Title,
			Section: issue.Section,
			Count:   len(answers),
			Answers: toAnswers(answers),
		})
	}
	s.stats.recordReport(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminReload synchronously rebuilds and hot-swaps advisors through
// the lifecycle manager — ?advisor=NAME for one, none for all. Single-flight
// collisions are 409 (a rebuild is already running, the request is
// redundant), unknown advisors 404, build failures 500.
func (s *Service) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	lm := s.lifecycleManager()
	if lm == nil {
		writeError(w, http.StatusNotImplemented, "corpus lifecycle not enabled on this server")
		return
	}
	advisor := strings.TrimSpace(r.URL.Query().Get("advisor"))
	start := time.Now()
	err := lm.ReloadNow(r.Context(), advisor)
	switch {
	case err == nil:
	case errors.Is(err, lifecycle.ErrInProgress):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, lifecycle.ErrUnknownSource):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "reload cancelled: %v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{
		Advisor:       advisor,
		DurationMicro: time.Since(start).Microseconds(),
		State:         lm.State(),
		TraceID:       obs.TraceID(r.Context()),
	})
}

// parseReport accepts both profiler formats: NVVP-style text and the JSON
// metrics snapshot.
func parseReport(text string) (*nvvp.Report, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "{") {
		m, err := nvvp.ParseMetricsJSON([]byte(trimmed))
		if err != nil {
			return nil, err
		}
		return m.Report(), nil
	}
	return nvvp.Parse(text)
}

// writeQueryError maps CachedQuery errors onto status codes: unknown advisor
// → 404, unknown backend → 400, overload → 429, deadline → 503, anything
// else → 500.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownAdvisor):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, vsm.ErrUnknownBackend):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request timed out")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// render to a buffer first so marshal errors become clean 500s
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = buf.WriteTo(w)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	// ServeHTTP stamps X-Trace-Id on the response before routing, so every
	// error body can echo its trace ID without threading a context here
	writeJSON(w, status, ErrorResponse{
		Error:   fmt.Sprintf(format, args...),
		TraceID: w.Header().Get("X-Trace-Id"),
	})
}
