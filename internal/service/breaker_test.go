package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vsm"
)

// fakeClock is a manually advanced clock for walking breaker cooldowns
// without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func testBreaker(clk *fakeClock, threshold int, cooldown time.Duration) *Breaker {
	b := NewBreaker(threshold, cooldown)
	b.setNow(clk.now)
	return b
}

// newTestServiceWithFaults builds a Service over n copies of the shared e2e
// advisor with a private metrics registry and the given injector wired in.
func newTestServiceWithFaults(t testing.TB, inj *fault.Injector, n int) (*Service, []string) {
	t.Helper()
	reg := NewRegistry()
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("adv%d", i)
		reg.Add(name, e2eAdvisor(t))
		names = append(names, name)
	}
	return New(reg, Options{Fault: inj, Metrics: obs.NewRegistry()}), names
}

func TestBreakerNilIsClosedNoOp(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker rejected a call")
	}
	b.Record(true)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("nil breaker state %v", b.State())
	}
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3, time.Second)
	for i := 0; i < 2; i++ {
		b.Record(true)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state %v", i+1, got)
		}
	}
	b.Record(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold state %v", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3, time.Second)
	b.Record(true)
	b.Record(true)
	b.Record(false) // streak broken
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1, time.Second)
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatal("threshold=1 did not trip")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission: %v", b.State())
	}
	// only one probe at a time
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Record(false) // probe succeeds
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe left state %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1, time.Second)
	b.Record(true)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Record(true) // probe fails
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe left state %v", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a call without a fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown did not admit a probe")
	}
}

func TestBreakerOpenIgnoresStragglers(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1, time.Second)
	b.Record(true)
	// calls in flight at trip time report back while open: no state change
	b.Record(false)
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("straggler outcomes moved an open breaker to %v", b.State())
	}
}

func TestBreakerTransitionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	set := newBreakerSet(1, time.Second, reg)
	clk := newFakeClock()
	b := set.get("adv")
	b.setNow(clk.now)
	b.Record(true) // closed -> open
	clk.advance(time.Second)
	b.Allow()       // open -> half-open
	b.Record(false) // half-open -> closed
	if got := reg.Counter("service_breaker_transitions_total").Value(); got != 3 {
		t.Fatalf("transitions counter = %d, want 3", got)
	}
	if got := reg.Gauge(`service_breaker_state{advisor="adv"}`).Value(); got != int64(BreakerClosed) {
		t.Fatalf("state gauge = %d, want closed", got)
	}
}

func TestBreakerSetSnapshotSorted(t *testing.T) {
	set := newBreakerSet(0, 0, obs.NewRegistry())
	set.get("zeta")
	set.get("alpha").Record(true)
	for i := 0; i < DefaultBreakerThreshold; i++ {
		set.get("alpha").Record(true)
	}
	snap := set.snapshot()
	if len(snap) != 2 || snap[0].Advisor != "alpha" || snap[1].Advisor != "zeta" {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap[0].State != "open" || snap[1].State != "closed" {
		t.Fatalf("snapshot states %+v", snap)
	}
}

func TestBreakerFailureClassification(t *testing.T) {
	tests := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{fmt.Errorf("%w: %q", ErrUnknownAdvisor, "x"), false},
		{fmt.Errorf("%w: %q", vsm.ErrUnknownBackend, "x"), false},
		{ErrOverloaded, false},
		{context.DeadlineExceeded, true},
		{context.Canceled, true},
		{fault.ErrInjected, true},
		{errors.New("disk on fire"), true},
	}
	for _, tt := range tests {
		if got := breakerFailure(tt.err); got != tt.want {
			t.Errorf("breakerFailure(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}

// TestAskSkipsOpenBreaker drives a breaker open through injected scoring
// faults and checks /v1/ask degrades: the broken advisor lands in the errors
// map, the healthy one still answers, and after Reset + cooldown the probe
// heals the breaker.
func TestAskSkipsOpenBreaker(t *testing.T) {
	inj := fault.New(42)
	svc, names := newTestServiceWithFaults(t, inj, 2)
	if len(names) != 2 {
		t.Fatalf("want 2 advisors, got %v", names)
	}
	clk := newFakeClock()
	for _, n := range names {
		svc.breakers.get(n).setNow(clk.now)
	}

	// trip every advisor: all scoring calls fail
	inj.Set(fault.VSMScore, fault.Rule{ErrProb: 1})
	for i := 0; i < DefaultBreakerThreshold; i++ {
		// distinct queries dodge the cache (errors are never cached, but
		// keep the draws independent anyway)
		_, errs := svc.Ask(context.Background(), "", fmt.Sprintf("memory coalescing %d", i), 3)
		if len(errs) == 0 {
			t.Fatalf("round %d: fault storm produced no errors", i)
		}
	}
	for _, n := range names {
		if st := svc.breakers.get(n).State(); st != BreakerOpen {
			t.Fatalf("advisor %s breaker %v after storm", n, st)
		}
	}

	// while open, asks skip the advisors entirely and report ErrBreakerOpen
	answers, errs := svc.Ask(context.Background(), "", "memory coalescing", 3)
	if len(answers) != 0 {
		t.Fatalf("open breakers still produced answers: %v", answers)
	}
	for _, n := range names {
		if errs[n] != ErrBreakerOpen.Error() {
			t.Fatalf("advisor %s error %q, want breaker-open", n, errs[n])
		}
	}

	// faults off + cooldown elapsed: the next ask is the probe and heals
	inj.Reset()
	clk.advance(DefaultBreakerCooldown)
	answers, errs = svc.Ask(context.Background(), "", "memory coalescing", 3)
	if len(errs) != 0 {
		t.Fatalf("post-recovery errors: %v", errs)
	}
	if len(answers) == 0 {
		t.Fatal("post-recovery ask found no answers")
	}
	for _, n := range names {
		if st := svc.breakers.get(n).State(); st != BreakerClosed {
			t.Fatalf("advisor %s breaker %v after recovery", n, st)
		}
	}
	// /statsz reflects the healed state
	snap := svc.Stats()
	if len(snap.Breakers) != 2 {
		t.Fatalf("stats breakers %+v", snap.Breakers)
	}
	for _, b := range snap.Breakers {
		if b.State != "closed" {
			t.Fatalf("stats breaker %+v", b)
		}
	}
}
