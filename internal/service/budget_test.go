package service

import (
	"context"
	"testing"
	"time"
)

func TestBatchShare(t *testing.T) {
	tests := []struct {
		remaining      time.Duration
		items, workers int
		want           time.Duration
	}{
		// 8 items over 8 workers: one wave, everyone gets the full budget
		{2 * time.Second, 8, 8, 2 * time.Second},
		// 64 items over 8 workers: 8 waves
		{2 * time.Second, 64, 8, 250 * time.Millisecond},
		// 65 items over 8 workers: 9 waves (ceil)
		{900 * time.Millisecond, 65, 8, 100 * time.Millisecond},
		// more workers than items: clamps to one wave
		{time.Second, 2, 8, time.Second},
		// zero workers defaults to one
		{100 * time.Millisecond, 2, 0, 50 * time.Millisecond},
		// expired budget floors at minShare instead of going negative
		{-time.Second, 4, 2, minShare},
		{0, 4, 2, minShare},
		// no items: pass the budget through
		{time.Second, 0, 8, time.Second},
		// no items AND expired deadline: the passthrough branch must still
		// floor at minShare — a negative duration handed to WithTimeout
		// would be an already-expired child context created for no reason
		{-time.Second, 0, 8, minShare},
		{0, 0, 8, minShare},
		{minShare - 1, 0, 8, minShare},
		{-time.Second, -3, 8, minShare},
	}
	for _, tt := range tests {
		if got := batchShare(tt.remaining, tt.items, tt.workers); got != tt.want {
			t.Errorf("batchShare(%v, %d, %d) = %v, want %v",
				tt.remaining, tt.items, tt.workers, got, tt.want)
		}
	}
}

func TestAskShare(t *testing.T) {
	if got := askShare(time.Second); got != 900*time.Millisecond {
		t.Errorf("askShare(1s) = %v, want 900ms (10%% merge reserve)", got)
	}
	if got := askShare(0); got != minShare {
		t.Errorf("askShare(0) = %v, want floor %v", got, minShare)
	}
	if got := askShare(-time.Second); got != minShare {
		t.Errorf("askShare(-1s) = %v, want floor %v", got, minShare)
	}
}

func TestRemainingBudget(t *testing.T) {
	if got := remainingBudget(context.Background(), 3*time.Second); got != 3*time.Second {
		t.Errorf("no-deadline context: %v, want fallback", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got := remainingBudget(ctx, 3*time.Second)
	if got <= 50*time.Second || got > time.Minute {
		t.Errorf("deadline context: %v, want just under 1m", got)
	}
}

// TestBudgetExpiredDeadlineFailsFast pins the end-to-end composition for a
// request that arrives with its deadline already behind it: remainingBudget
// goes negative, every share function floors at minShare, and the derived
// child context fails immediately with DeadlineExceeded instead of hanging
// or panicking on a negative timeout.
func TestBudgetExpiredDeadlineFailsFast(t *testing.T) {
	parent, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	remaining := remainingBudget(parent, 3*time.Second)
	if remaining > 0 {
		t.Fatalf("expired context reported %v remaining", remaining)
	}
	for _, share := range []time.Duration{
		batchShare(remaining, 0, 8),
		batchShare(remaining, 16, 4),
		askShare(remaining),
	} {
		if share < minShare {
			t.Fatalf("share %v below minShare for expired budget", share)
		}
		child, cancel2 := context.WithTimeout(parent, share)
		start := time.Now()
		<-child.Done()
		if waited := time.Since(start); waited > 100*time.Millisecond {
			t.Errorf("expired child took %v to report Done", waited)
		}
		if err := child.Err(); err != context.DeadlineExceeded {
			t.Errorf("child.Err() = %v, want DeadlineExceeded", err)
		}
		cancel2()
	}
}

// TestBatchItemsGetFairShares answers a batch whose per-item share math is
// observable: with the service timeout as the whole budget and more items
// than workers, each item's deadline must be a fraction of the request's.
func TestBatchItemsGetFairShares(t *testing.T) {
	svc, _ := newTestService(t, Options{Timeout: time.Second, BatchWorkers: 2})
	items := []BatchItem{
		{Advisor: "cuda", Query: "memory coalescing"},
		{Advisor: "cuda", Query: "shared memory bank conflict"},
		{Advisor: "cuda", Query: "occupancy"},
		{Advisor: "cuda", Query: "warp divergence"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	results := svc.Batch(ctx, items)
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("item %d (%q): %s", i, items[i].Query, r.Error)
		}
	}
	// 4 items / 2 workers = 2 waves: each item's share is ~remaining/2 and
	// the batch still completes well inside the parent deadline
	if share := batchShare(time.Second, len(items), 2); share != 500*time.Millisecond {
		t.Fatalf("wave math drifted: share = %v", share)
	}
}

// TestBudgetNeverExtendsParentDeadline pins the composition rule the whole
// design rests on: WithTimeout can only shrink the remaining budget.
func TestBudgetNeverExtendsParentDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	child, cancel2 := context.WithTimeout(parent, time.Hour)
	defer cancel2()
	dl, ok := child.Deadline()
	if !ok {
		t.Fatal("child lost the deadline")
	}
	if time.Until(dl) > 10*time.Millisecond {
		t.Fatalf("child deadline %v extends the parent's", time.Until(dl))
	}
}
