package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nvvp"
	"repro/internal/obs"
)

var (
	e2eOnce sync.Once
	e2eAdv  *core.Advisor

	// traceIDRe strips the per-request trace_id field when tests compare
	// response bodies for byte-identity across repeated queries.
	traceIDRe = regexp.MustCompile(`,"trace_id":"[^"]*"`)
)

// e2eAdvisor builds one moderately sized CUDA advisor for the whole test
// package (Stage I over the corpus is the expensive part).
func e2eAdvisor(t testing.TB) *core.Advisor {
	t.Helper()
	e2eOnce.Do(func() {
		g := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 7)
		e2eAdv = core.New().BuildFromSentences(g.Doc, g.Sentences)
	})
	return e2eAdv
}

func newTestService(t testing.TB, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	reg.Add("cuda", e2eAdvisor(t))
	svc := New(reg, opts)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestEndpoints(t *testing.T) {
	_, ts := newTestService(t, Options{})

	t.Run("healthz", func(t *testing.T) {
		code, body := get(t, ts.URL+"/healthz")
		if code != 200 || !strings.Contains(string(body), "ok") {
			t.Errorf("healthz %d %q", code, body)
		}
	})
	t.Run("readyz", func(t *testing.T) {
		code, _ := get(t, ts.URL+"/readyz")
		if code != 200 {
			t.Errorf("readyz %d, want 200 with populated registry", code)
		}
	})
	t.Run("advisors", func(t *testing.T) {
		code, body := get(t, ts.URL+"/v1/advisors")
		if code != 200 {
			t.Fatalf("advisors %d", code)
		}
		var infos []AdvisorInfo
		if err := json.Unmarshal(body, &infos); err != nil {
			t.Fatal(err)
		}
		if len(infos) != 1 || infos[0].Name != "cuda" || infos[0].Rules == 0 ||
			infos[0].Sentences != 150 || infos[0].BuiltAt.IsZero() {
			t.Errorf("advisors %+v", infos)
		}
	})
	t.Run("rules", func(t *testing.T) {
		code, body := get(t, ts.URL+"/v1/cuda/rules")
		if code != 200 {
			t.Fatalf("rules %d", code)
		}
		var resp RulesResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Advisor != "cuda" || resp.Count == 0 || len(resp.Rules) != resp.Count {
			t.Errorf("rules %+v", resp)
		}
		for _, r := range resp.Rules[:1] {
			if r.Text == "" || r.Selector == "" {
				t.Errorf("rule %+v missing fields", r)
			}
		}
	})
	t.Run("query", func(t *testing.T) {
		code, body := get(t, ts.URL+"/v1/cuda/query?q=how+to+reduce+memory+latency")
		if code != 200 {
			t.Fatalf("query %d %s", code, body)
		}
		var resp QueryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Advisor != "cuda" || resp.Count != len(resp.Answers) {
			t.Errorf("query %+v", resp)
		}
	})
	t.Run("query cache header", func(t *testing.T) {
		resp1, err := http.Get(ts.URL + "/v1/cuda/query?q=warp+divergence+in+control+flow")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp1.Body)
		resp1.Body.Close()
		resp2, err := http.Get(ts.URL + "/v1/cuda/query?q=warp+divergence+in+control+flow")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
		if resp1.Header.Get("X-Cache") != "miss" || resp2.Header.Get("X-Cache") != "hit" {
			t.Errorf("X-Cache %q then %q, want miss then hit",
				resp1.Header.Get("X-Cache"), resp2.Header.Get("X-Cache"))
		}
	})
	t.Run("query missing q", func(t *testing.T) {
		code, body := get(t, ts.URL+"/v1/cuda/query")
		if code != http.StatusBadRequest || !strings.Contains(string(body), "missing query") {
			t.Errorf("no-q: %d %s", code, body)
		}
	})
	t.Run("unknown advisor", func(t *testing.T) {
		for _, path := range []string{"/v1/fortran/rules", "/v1/fortran/query?q=x"} {
			if code, _ := get(t, ts.URL+path); code != http.StatusNotFound {
				t.Errorf("%s: %d, want 404", path, code)
			}
		}
	})
	t.Run("report", func(t *testing.T) {
		text, err := nvvp.Synthesize("norm")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/cuda/report", "text/plain", strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("report %d %s", resp.StatusCode, body)
		}
		var rr ReportResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Advisor != "cuda" || len(rr.Issues) == 0 {
			t.Errorf("report %+v", rr)
		}
	})
	t.Run("report bad body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/cuda/report", "text/plain", strings.NewReader("not a report"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad report %d, want 400", resp.StatusCode)
		}
	})
	t.Run("statsz", func(t *testing.T) {
		code, body := get(t, ts.URL+"/statsz")
		if code != 200 {
			t.Fatalf("statsz %d", code)
		}
		var snap StatsSnapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Requests == 0 || snap.Advisors != 1 {
			t.Errorf("statsz %+v", snap)
		}
	})
}

// TestConcurrentHammer drives the JSON API with 32 goroutines mixing
// repeated and unique queries, asserting: no 5xx, cache hits observed, and
// byte-identical bodies for identical queries. Run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	svc, ts := newTestService(t, Options{CacheSize: 256, MaxInFlight: 16, Timeout: 10 * time.Second})

	repeated := []string{
		"how to reduce global memory latency",
		"avoid divergent warps in control flow",
		"improve occupancy of the kernel",
		"coalesce global memory accesses",
	}
	const (
		goroutines = 32
		perG       = 30
	)
	var mu sync.Mutex
	bodies := map[string]string{} // query -> first body seen
	var badStatus []string

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: goroutines}}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var q string
				if i%3 == 0 { // a third unique, the rest repeated
					q = fmt.Sprintf("unique question %d from goroutine %d about latency", i, g)
				} else {
					q = repeated[(g+i)%len(repeated)]
				}
				resp, err := client.Get(ts.URL + "/v1/cuda/query?q=" + strings.ReplaceAll(q, " ", "+"))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				// the trace_id field is per-request by design; everything
				// else in the body must stay byte-identical across repeats
				norm := traceIDRe.ReplaceAllString(string(body), "")
				mu.Lock()
				if resp.StatusCode >= 500 {
					badStatus = append(badStatus, fmt.Sprintf("%d for %q", resp.StatusCode, q))
				}
				if prev, ok := bodies[q]; ok {
					if prev != norm {
						t.Errorf("response for %q changed between requests", q)
					}
				} else {
					bodies[q] = norm
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	if len(badStatus) > 0 {
		t.Fatalf("5xx responses under load: %v", badStatus[:min(5, len(badStatus))])
	}
	snap := svc.Stats()
	if snap.CacheHits == 0 {
		t.Error("no cache hits after hammering repeated queries")
	}
	if snap.CacheMisses == 0 {
		t.Error("no cache misses recorded")
	}
	if snap.Requests < goroutines*perG {
		t.Errorf("requests %d < %d issued", snap.Requests, goroutines*perG)
	}
	t.Logf("hammer: %d requests, %d hits, %d misses, %d evictions, p50 %dµs p99 %dµs",
		snap.Requests, snap.CacheHits, snap.CacheMisses, snap.Evictions,
		snap.QueryP50Micros, snap.QueryP99Micros)
}

func TestAdmissionRejectsOverload(t *testing.T) {
	svc, ts := newTestService(t, Options{MaxInFlight: 1, MaxQueue: 1})
	// occupy the only worker slot directly, then saturate the queue
	if err := svc.admit.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		queued <- svc.admit.Acquire(ctx)
	}()
	for i := 0; svc.admit.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// worker busy + queue full -> the HTTP path must shed with 429
	resp, err := http.Get(ts.URL + "/v1/cuda/query?q=memory+latency")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded query: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	svc.admit.Release() // admit the queued waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	svc.admit.Release()
	if svc.Stats().Rejected == 0 {
		t.Error("rejection not counted in stats")
	}
}

func TestQueryTimeout(t *testing.T) {
	svc, _ := newTestService(t, Options{MaxInFlight: 1, MaxQueue: 1, Timeout: 10 * time.Millisecond})
	// hold the worker slot so the query waits in the queue past its deadline
	if err := svc.admit.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer svc.admit.Release()
	_, _, err := svc.CachedQuery(context.Background(), "cuda", "memory latency")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestReloadInvalidatesCache(t *testing.T) {
	svc, ts := newTestService(t, Options{})
	q := "/v1/cuda/query?q=shared+memory+bank+conflicts"
	get(t, ts.URL+q) // populate
	resp, _ := http.Get(ts.URL + q)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("expected a cache hit before reload")
	}
	// hot-swap with a differently seeded guide
	g := corpus.GenerateSized(corpus.CUDA, 150, 0.3, 8)
	next := core.New().BuildFromSentences(g.Doc, g.Sentences)
	diff := svc.Reload("cuda", next)
	if len(diff.Added)+len(diff.Removed) == 0 {
		t.Log("note: reload produced no rule churn (unusual but not wrong)")
	}
	resp2, _ := http.Get(ts.URL + q)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Cache") != "miss" {
		t.Error("cache must miss after hot-swap invalidation")
	}
	if got, _ := svc.Registry().Get("cuda"); got != next {
		t.Error("registry did not swap")
	}
}

func TestDrainFlipsReadyz(t *testing.T) {
	svc, ts := newTestService(t, Options{})
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz %d before drain", code)
	}
	svc.BeginDrain()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz %d after BeginDrain, want 503", code)
	}
	// draining sheds new LB traffic but keeps serving requests already routed
	if code, _ := get(t, ts.URL+"/v1/cuda/query?q=memory+latency"); code != 200 {
		t.Errorf("query during drain: %d, want 200", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("healthz during drain: %d (process is still alive)", code)
	}
}

func TestReadyzEmptyRegistry(t *testing.T) {
	svc := New(NewRegistry(), Options{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("empty registry readyz %d, want 503", code)
	}
}

// collectSpanNames flattens a span tree into the set of span names it holds.
func collectSpanNames(s obs.SpanJSON, into map[string]bool) {
	into[s.Name] = true
	for _, c := range s.Children {
		collectSpanNames(c, into)
	}
}

// TestQueryTraceTree is the observability acceptance path: with sampling at
// 1.0, a single /v1/query yields a trace ID whose span tree — retrieved from
// /tracez — contains the admission, annotate, cache, and score stages, and
// /metricz reconciles with /statsz.
func TestQueryTraceTree(t *testing.T) {
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(1.0, obs.NewTraceStore(16))
	_, ts := newTestService(t, Options{Tracer: tracer, Metrics: metrics})

	resp, err := http.Get(ts.URL + "/v1/cuda/query?q=coalesce+global+memory+accesses")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query %d %s", resp.StatusCode, body)
	}
	headerID := resp.Header.Get("X-Trace-Id")
	if headerID == "" {
		t.Fatal("missing X-Trace-Id header")
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != headerID {
		t.Errorf("trace_id %q != X-Trace-Id %q", qr.TraceID, headerID)
	}

	code, tbody := get(t, ts.URL+"/tracez?id="+headerID)
	if code != 200 {
		t.Fatalf("tracez %d %s", code, tbody)
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != headerID {
		t.Errorf("trace id %q, want %q", tr.ID, headerID)
	}
	names := map[string]bool{}
	collectSpanNames(tr.Root, names)
	for _, want := range []string{"admission", "annotate", "cache", "score"} {
		if !names[want] {
			t.Errorf("trace tree missing %q span (have %v)", want, names)
		}
	}

	// a second identical query is a cache hit: traced, but without a score
	// span under cache
	resp2, err := http.Get(ts.URL + "/v1/cuda/query?q=coalesce+global+memory+accesses")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	id2 := resp2.Header.Get("X-Trace-Id")
	if id2 == headerID {
		t.Error("trace IDs not unique across requests")
	}
	code, tbody = get(t, ts.URL+"/tracez?id="+id2)
	if code != 200 {
		t.Fatalf("tracez (hit) %d %s", code, tbody)
	}
	var tr2 obs.TraceJSON
	if err := json.Unmarshal(tbody, &tr2); err != nil {
		t.Fatal(err)
	}
	hitNames := map[string]bool{}
	collectSpanNames(tr2.Root, hitNames)
	if hitNames["score"] {
		t.Error("cache-hit trace contains a score span; retrieval should have been skipped")
	}

	// /metricz must agree with /statsz: the service_* counters are the same
	// atomics behind both views
	code, mbody := get(t, ts.URL+"/metricz")
	if code != 200 {
		t.Fatalf("metricz %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	code, sbody := get(t, ts.URL+"/statsz")
	if code != 200 {
		t.Fatalf("statsz %d", code)
	}
	var stats StatsSnapshot
	if err := json.Unmarshal(sbody, &stats); err != nil {
		t.Fatal(err)
	}
	// statsz was read after metricz, so its request counter may be ahead by
	// the /statsz request itself — but hits/misses only move on /v1 queries
	if got := snap.Counters["service_cache_hits_total"]; got != stats.CacheHits {
		t.Errorf("metricz hits %d != statsz hits %d", got, stats.CacheHits)
	}
	if got := snap.Counters["service_cache_misses_total"]; got != stats.CacheMisses {
		t.Errorf("metricz misses %d != statsz misses %d", got, stats.CacheMisses)
	}
	qh, ok := snap.Histograms["service_query_latency_micros"]
	if !ok {
		t.Fatal("metricz missing service_query_latency_micros histogram")
	}
	if qh.Count != 2 {
		t.Errorf("query histogram count %d, want 2", qh.Count)
	}
}
