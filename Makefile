# Tier-1 gate: everything a PR must keep green.
.PHONY: check vet build test race bench bench-all serve

check: ## vet + build + race-enabled tests (the tier-1 gate)
	go vet ./...
	go build ./...
	go test -race ./...

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Trajectory benchmarks: the fixed-size numbers tracked across PRs.
# Flags are pinned so results stay comparable between runs.
BENCH_TRACKED = BenchmarkBuildAdvisor150|BenchmarkAnnotateOnce|BenchmarkServiceQuery
bench: ## cross-PR trajectory benchmarks (build pipeline, annotate-once, serving)
	go test -run '^$$' -bench '$(BENCH_TRACKED)' -benchmem -count 1 .

bench-all: ## full sweep: per-table benchmarks + serving/index ablations
	go test -run '^$$' -bench . -benchmem ./...

serve: ## run the advising service with all three built-in guides
	go run ./cmd/egeria -corpus cuda -corpora opencl,xeon serve -addr :8080
