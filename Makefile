# Tier-1 gate: everything a PR must keep green.
.PHONY: check vet fmt build test race fuzz chaos bench bench-all benchrot cover serve

check: ## vet + gofmt + build + race-enabled tests + fuzz smoke + chaos smoke (the tier-1 gate)
	go vet ./...
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed on:"; gofmt -l .; exit 1; }
	go build ./...
	go test -race ./...
	$(MAKE) fuzz
	$(MAKE) chaos

vet:
	go vet ./...

fmt: ## fail if any file needs gofmt
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed on:"; gofmt -l .; exit 1; }

# Each target runs its seed corpus (testdata/fuzz/, regenerate with
# `go run ./tools/fuzzseed`) plus 10s of coverage-guided exploration.
FUZZTIME ?= 10s
fuzz: ## run every fuzz target for $(FUZZTIME) (default 10s each)
	go test -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME) ./internal/htmldoc
	go test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/depparse
	go test -run '^$$' -fuzz FuzzQuery -fuzztime $(FUZZTIME) ./internal/service
	go test -run '^$$' -fuzz FuzzLoadAdvisor -fuzztime $(FUZZTIME) ./internal/core
	go test -run '^$$' -fuzz FuzzTopKParity -fuzztime $(FUZZTIME) ./internal/vsm

# The deterministic chaos/soak suite (DESIGN.md §12): every fault point armed,
# concurrent traffic under -race, recovery compared byte-for-byte against a
# fault-free control. -chaos.short keeps the smoke run fast; drop the flag
# for the full-volume soak.
CHAOS_FLAGS ?= -chaos.short
chaos: ## chaos suite under -race (short volume by default; CHAOS_FLAGS= for full)
	go test -race -count=1 -run 'TestServeChaosSoak' ./cmd/egeria $(CHAOS_FLAGS)

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Trajectory benchmarks: the fixed-size numbers tracked across PRs.
# Flags are pinned so results stay comparable between runs.
BENCH_TRACKED = BenchmarkShardedQuery|BenchmarkBuildAdvisor150|BenchmarkAnnotateOnce|BenchmarkServiceQuery|BenchmarkColdBuild|BenchmarkWarmStart|BenchmarkIncrementalRebuild|BenchmarkPrunedTopK
bench: ## cross-PR trajectory benchmarks (build pipeline, annotate-once, serving, lifecycle)
	go test -run '^$$' -bench '$(BENCH_TRACKED)' -benchmem -count 1 . ./internal/lifecycle

bench-all: ## full sweep: per-table benchmarks + serving/index ablations
	go test -run '^$$' -bench . -benchmem ./...

benchrot: ## bench-rot gate: compile and run every benchmark once (1 iteration)
	go test -run '^$$' -bench . -benchtime=1x ./...

# Statement-coverage gate. COVER_BASELINE is the seed total measured when
# the gate was introduced; raise it when coverage durably improves, never
# lower it to make a PR pass. `make cover` writes coverage.out (the raw
# profile) and coverage.txt (the per-package table CI uploads).
COVER_BASELINE = 88.5
cover: ## per-package coverage table + total; fails below COVER_BASELINE
	go test -count=1 -coverprofile=coverage.out ./internal/... ./cmd/...
	go run ./tools/coverreport -profile coverage.out -baseline $(COVER_BASELINE) | tee coverage.txt

serve: ## run the advising service with all three built-in guides
	go run ./cmd/egeria -corpus cuda -corpora opencl,xeon serve -addr :8080
