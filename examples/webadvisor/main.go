// Web advisor (paper Figs. 6-7 / artifact appendix): serve the CUDA Adviser
// over HTTP with a rule list front page, a query box, and NVVP report
// upload. Visit http://localhost:8080 after starting.
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/selectors"
	"repro/internal/webui"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	register := flag.String("guide", "cuda", "guide register: cuda, opencl, xeon")
	flag.Parse()

	var reg corpus.Register
	cfg := selectors.DefaultConfig()
	title := "CUDA Adviser"
	switch *register {
	case "cuda":
		reg = corpus.CUDA
	case "opencl":
		reg = corpus.OpenCL
		title = "OpenCL Adviser"
	case "xeon":
		reg = corpus.XeonPhi
		cfg = selectors.XeonTunedConfig()
		title = "Xeon Phi Adviser"
	default:
		log.Fatalf("unknown guide %q", *register)
	}

	guide := corpus.Generate(reg, 1)
	advisor := core.New(core.WithConfig(cfg)).BuildFromSentences(guide.Doc, guide.Sentences)
	log.Printf("%s: %d rules from %d sentences; listening on %s",
		title, len(advisor.Rules()), advisor.SentenceCount(), *addr)
	log.Fatal(http.ListenAndServe(*addr, webui.New(advisor, title)))
}
