// Domain port: the paper closes §3.2 noting "the approach is possible to
// apply to non-HPC domains; some extensions in the design (keywords, rules,
// NLP uses) might be necessary." This example ports the advisor generator to
// a database tuning guide: the default HPC keyword sets already catch the
// structurally-marked advice (imperatives, purpose clauses, "should"), and a
// small JSON-style keyword extension picks up the domain's own advising
// vocabulary.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/selectors"
)

const dbGuide = `<html><head><title>Database Tuning Guide</title></head><body>
<h1>1. Storage Layout</h1>
<p>The storage engine keeps one file per table segment. Rows are packed into
eight kilobyte pages. A page holds a header, the row data, and a free-space
map. Vacuuming reclaims the space of deleted rows.</p>

<h1>2. Tuning Guidelines</h1>
<h2>2.1. Indexing</h2>
<p>Create an index for every column that appears in frequent range scans.
Avoid indexing columns with very few distinct values. A partial index is a
good choice when queries always filter on the same predicate. To minimize
write amplification, drop indexes that no query plan uses. Rebuilding an
index is worthwhile after bulk deletions.</p>

<h2>2.2. Queries</h2>
<p>The planner estimates costs from table statistics. Developers should
refresh the statistics after large loads. It is usually faster to batch many
small inserts into one transaction than to commit each row. Consider a
covering index instead of a heap fetch when the working set is read-mostly.
Denormalizing the hottest join is worthwhile once it dominates the plan.</p>

<h2>2.3. Memory</h2>
<p>The shared buffer pool caches recently used pages. Size the buffer pool to
the hot working set, not to all of memory. Connection slots each reserve work
memory; keep the slot count near the real concurrency. Sort spills go to
disk when work memory is exhausted.</p>
</body></html>`

func main() {
	fmt.Println("== default (HPC) keyword sets ==")
	base := core.New().BuildFromHTML(dbGuide)
	printRules(base)

	// the domain extension: a handful of database-flavored keywords, the
	// kind of file -config accepts as JSON
	ext := selectors.Config{
		FlaggingWords: []string{"worthwhile", "is faster"},
		KeySubjects:   []string{"planner", "index"},
	}
	fmt.Println("\n== with the database keyword extension ==")
	tuned := core.New(core.WithConfig(selectors.DefaultConfig().Merge(ext))).BuildFromHTML(dbGuide)
	printRules(tuned)

	fmt.Println("\n== the ported advisor answering a question ==")
	for _, a := range tuned.Query("when should I rebuild or drop an index") {
		fmt.Printf("  %.2f  %s\n", a.Score, a.Sentence.Text)
	}
}

func printRules(a *core.Advisor) {
	fmt.Printf("%d advising sentences of %d:\n", len(a.Rules()), a.SentenceCount())
	for _, r := range a.Rules() {
		fmt.Printf("  [%s] %s\n", r.Selector, r.Text)
	}
}
