// Autotune: the closed loop the Egeria workflow enables, run end to end on
// the simulated substrate —
//
//	model the kernel → profile it (JSON metrics → issues) → query the
//	advisor with each issue → map the retrieved advice to source
//	optimizations → apply them to the kernel model → re-profile,
//
// iterating until the profiler reports no further issues or no new advice
// maps to an optimization. This exercises the metrics profiler format (the
// paper's future-work extension) and demonstrates that the advisor's output
// is actionable, not just readable.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gpusim"
	"repro/internal/nvvp"
	"repro/internal/study"
)

func main() {
	log.SetFlags(0)

	guide := corpus.Generate(corpus.CUDA, 1)
	advisor := core.New().BuildFromSentences(guide.Doc, guide.Sentences)
	device := gpusim.GTX780()

	kernel := gpusim.NormKernel()
	base := kernel
	applied := map[gpusim.Optimization]bool{}

	for round := 1; round <= 6; round++ {
		metrics := nvvp.ProfileKernel(kernel, device)
		issues := metrics.Issues()
		fmt.Printf("== Round %d: %.3f ms, %d issue(s)\n",
			round, kernel.TimeOn(device)*1e3, len(issues))
		if len(issues) == 0 {
			fmt.Println("   profiler is clean; stopping")
			break
		}

		// collect advice for every issue and map it to optimizations
		var advice []string
		for _, issue := range issues {
			fmt.Printf("   issue: %s\n", issue.Title)
			for _, ans := range advisor.Query(issue.Query()) {
				advice = append(advice, ans.Sentence.Text)
			}
		}
		newOpts := []gpusim.Optimization{}
		for _, o := range study.MatchOptimizations(advice) {
			if !applied[o] {
				applied[o] = true
				newOpts = append(newOpts, o)
			}
		}
		if len(newOpts) == 0 {
			fmt.Println("   no new optimizations surfaced; stopping")
			break
		}
		for _, o := range newOpts {
			fmt.Printf("   applying: %s\n", o)
		}
		kernel = gpusim.Apply(kernel, newOpts...)
	}

	fmt.Printf("\nFinal speedup on %s: %.2fX (%.3f ms -> %.3f ms)\n",
		device.Name, gpusim.Speedup(base, kernel, device),
		base.TimeOn(device)*1e3, kernel.TimeOn(device)*1e3)
}
