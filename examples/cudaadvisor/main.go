// CUDA Adviser case study (paper §4.1): build the advisor for the CUDA-
// register guide, feed it the norm.cu NVVP profiler report (Table 3), print
// the recommended sentences with their section context (Table 4 / Fig. 4),
// and answer the follow-up query the paper's students asked.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nvvp"
)

func main() {
	log.SetFlags(0)

	// Build the CUDA Adviser from the synthetic CUDA programming guide.
	guide := corpus.Generate(corpus.CUDA, 1)
	advisor := core.New().BuildFromSentences(guide.Doc, guide.Sentences)
	fmt.Printf("CUDA Adviser: %d rules from %d sentences (ratio %.1f)\n\n",
		len(advisor.Rules()), advisor.SentenceCount(), advisor.CompressionRatio())

	// Table 3: synthesize and parse the norm.cu profiler report.
	text, err := nvvp.Synthesize("norm")
	if err != nil {
		log.Fatal(err)
	}
	report, err := nvvp.Parse(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Performance issues extracted from the NVVP report (Table 3):")
	for _, issue := range report.Issues() {
		fmt.Printf("   - %s [%s]\n", issue.Title, issue.Section)
	}

	// Fig. 4: recommendations per issue, with same-section context.
	fmt.Println("\n== Recommendations (Fig. 4; highlighted = recommended):")
	for _, ra := range advisor.AnswerReport(report) {
		fmt.Printf("\nIssue: %s\n", ra.Issue.Title)
		for _, ans := range ra.Answers {
			fmt.Printf("  >> %.2f [%s]\n     %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
			for i, ctx := range advisor.ContextOf(ans) {
				if i >= 2 {
					break
				}
				fmt.Printf("      (context) %s\n", ctx.Text)
			}
		}
	}

	// Table 4: the example student query.
	query := "reduce instruction and memory latency"
	fmt.Printf("\n== Query: %q (Table 4):\n", query)
	for _, ans := range advisor.Query(query) {
		fmt.Printf("  %.2f [%s] %s\n", ans.Score, ans.Sentence.Section, ans.Sentence.Text)
	}
}
