// User study simulation (paper §4.1, Table 5, Fig. 5): 37 simulated students
// optimize the norm.cu kernel on two modeled GPUs; 22 get the CUDA Adviser.
// Prints which optimizations the advisor surfaced, the Table 5 speedups, and
// the Fig. 5 effect of the divergence removal alone.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gpusim"
	"repro/internal/study"
)

func main() {
	log.SetFlags(0)

	guide := corpus.Generate(corpus.CUDA, 1)
	advisor := core.New().BuildFromSentences(guide.Doc, guide.Sentences)

	surfaced, err := study.SurfacedOptimizations(advisor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Optimizations the CUDA Adviser surfaced for norm.cu:")
	for _, o := range surfaced {
		fmt.Printf("  - %s\n", o)
	}

	res, err := study.Run(advisor, study.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(study.Table5(res))

	// Fig. 5: the if-else divergence removal in isolation.
	base := gpusim.NormKernel()
	noDiv := gpusim.Apply(base, gpusim.RemoveDivergence)
	fmt.Println("\nFig. 5 — removing the if-else thread divergence alone:")
	for _, d := range []gpusim.Device{gpusim.GTX780(), gpusim.GTX480()} {
		fmt.Printf("  %-18s %.2fX\n", d.Name, gpusim.Speedup(base, noDiv, d))
	}
}
