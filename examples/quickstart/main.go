// Quickstart: synthesize an advising tool from a small HTML guide and ask it
// an optimization question — the minimal end-to-end use of the Egeria
// framework's public pipeline (document -> Stage I rules -> Stage II Q&A).
package main

import (
	"fmt"

	"repro/internal/core"
)

const guide = `<html><head><title>Tiny GPU Guide</title></head><body>
<h1>1. Architecture</h1>
<p>Each multiprocessor contains eight scalar cores. The warp size is
thirty-two threads. Shared memory is divided into sixteen banks. Each bank
can service one request per cycle.</p>

<h1>2. Performance Guidelines</h1>
<h2>2.1. Memory</h2>
<p>Use shared memory to reduce global memory traffic. Avoid bank conflicts by
padding the shared array. To maximize memory throughput, it is important to
coalesce global accesses. Developers can stage irregular accesses through
shared memory.</p>

<h2>2.2. Control Flow</h2>
<p>Any flow control instruction can impact the effective instruction
throughput. To obtain best performance, the controlling condition should be
written so as to minimize the number of divergent warps.</p>
</body></html>`

func main() {
	// 1. Create the framework (paper-default keyword sets and threshold)
	//    and synthesize an advisor from the document.
	framework := core.New()
	advisor := framework.BuildFromHTML(guide)

	// 2. Stage I output: the concise rule list.
	fmt.Printf("Extracted %d advising sentences from %d total (ratio %.1f):\n\n",
		len(advisor.Rules()), advisor.SentenceCount(), advisor.CompressionRatio())
	for _, rule := range advisor.Rules() {
		fmt.Printf("  [%s] %s\n      -- %s\n", rule.Selector, rule.Text, rule.Section)
	}

	// 3. Stage II: interactive Q&A.
	question := "how do I avoid shared memory bank conflicts"
	fmt.Printf("\nQ: %s\n", question)
	answers := advisor.Query(question)
	if len(answers) == 0 {
		fmt.Println("No relevant sentences found.")
		return
	}
	for _, a := range answers {
		fmt.Printf("A: (%.2f) %s\n", a.Score, a.Sentence.Text)
	}
}
